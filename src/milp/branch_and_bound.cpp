#include "milp/branch_and_bound.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "common/error.h"
#include "common/logging.h"

namespace etransform::milp {

namespace {

using lp::LpSolution;
using lp::Model;
using lp::SimplexSolver;
using lp::SolveStatus;

/// One open node: a set of tightened variable bounds plus the parent's
/// relaxation value used for best-first ordering.
struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double parent_bound = 0.0;
  int depth = 0;
};

/// Open-node pool with hybrid selection: depth-first while no incumbent
/// exists (plunging to a first integral leaf quickly), best-bound once one
/// does (tightening the global bound for pruning and gap termination).
class OpenNodes {
 public:
  void push(std::shared_ptr<Node> node) { nodes_.push_back(std::move(node)); }

  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  /// Smallest parent bound among open nodes (the global bound).
  [[nodiscard]] double best_bound() const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& node : nodes_) {
      best = std::min(best, node->parent_bound);
    }
    return best;
  }

  std::shared_ptr<Node> pop(bool depth_first) {
    std::size_t pick = nodes_.size() - 1;  // newest (deepest) by default
    if (!depth_first) {
      for (std::size_t k = 0; k < nodes_.size(); ++k) {
        if (nodes_[k]->parent_bound < nodes_[pick]->parent_bound) pick = k;
      }
    }
    std::shared_ptr<Node> node = std::move(nodes_[pick]);
    nodes_[pick] = std::move(nodes_.back());
    nodes_.pop_back();
    return node;
  }

 private:
  std::vector<std::shared_ptr<Node>> nodes_;
};

/// Index of the most fractional integer variable, or -1 if all integral.
int most_fractional(const Model& model, const std::vector<double>& values,
                    double tol) {
  int best = -1;
  double best_score = tol;  // distance from the nearest integer, in (0, 0.5]
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    const double v = values[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    const double score = std::min(frac, 1.0 - frac);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

bool all_integral(const Model& model, const std::vector<double>& values,
                  double tol) {
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    const double v = values[static_cast<std::size_t>(j)];
    if (std::abs(v - std::round(v)) > tol) return false;
  }
  return true;
}

/// Snaps near-integral values exactly onto integers.
void snap_integers(const Model& model, std::vector<double>& values,
                   double tol) {
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double& v = values[static_cast<std::size_t>(j)];
    const double r = std::round(v);
    if (std::abs(v - r) <= tol) v = r;
  }
}

}  // namespace

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnbounded: return "unbounded";
    case MilpStatus::kNoSolutionFound: return "no_solution_found";
  }
  return "?";
}

BranchAndBoundSolver::BranchAndBoundSolver(MilpOptions options)
    : options_(options) {}

MilpSolution BranchAndBoundSolver::solve(const Model& model) const {
  model.validate();
  const auto started = std::chrono::steady_clock::now();
  const auto out_of_time = [&]() {
    if (options_.time_limit_ms <= 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - started)
                             .count();
    return elapsed >= options_.time_limit_ms;
  };

  const double sense_sign = model.sense() == lp::Sense::kMinimize ? 1.0 : -1.0;
  // Internally everything is a minimization of sense_sign * objective.
  const SimplexSolver lp_solver(options_.lp_options);

  MilpSolution result;
  const int n = model.num_variables();
  std::vector<double> root_lower(static_cast<std::size_t>(n));
  std::vector<double> root_upper(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const auto& v = model.variable(j);
    // Integer bounds can be pre-rounded inward.
    root_lower[static_cast<std::size_t>(j)] =
        v.is_integer && std::isfinite(v.lower) ? std::ceil(v.lower - 1e-9)
                                               : v.lower;
    root_upper[static_cast<std::size_t>(j)] =
        v.is_integer && std::isfinite(v.upper) ? std::floor(v.upper + 1e-9)
                                               : v.upper;
  }

  bool have_incumbent = false;
  double incumbent = 0.0;  // in internal (minimization) orientation
  std::vector<double> incumbent_values;
  double global_bound = -lp::kInfinity;

  const auto try_incumbent = [&](const std::vector<double>& values,
                                 double objective_model_sense) {
    const double internal = sense_sign * objective_model_sense;
    if (!have_incumbent || internal < incumbent - 1e-12) {
      have_incumbent = true;
      incumbent = internal;
      incumbent_values = values;
      snap_integers(model, incumbent_values, options_.integrality_tol);
      ET_LOG(kDebug) << "milp: new incumbent " << objective_model_sense;
    }
  };

  // Diving heuristic: at every step fix *all* nearly-integral integer
  // variables plus the single most fractional one, then re-solve. Fixing in
  // bulk keeps dives to a handful of LP solves even on thousands of
  // binaries; if a bulk fix turns infeasible the dive simply aborts and
  // branch-and-bound proceeds.
  const auto dive = [&](std::vector<double> lower, std::vector<double> upper,
                        const LpSolution& start) {
    LpSolution current = start;
    for (int depth = 0; depth < 64; ++depth) {
      if (all_integral(model, current.values, options_.integrality_tol)) {
        try_incumbent(current.values, current.objective);
        return;
      }
      for (int j = 0; j < n; ++j) {
        if (!model.variable(j).is_integer) continue;
        const double v = current.values[static_cast<std::size_t>(j)];
        const double rounded = std::round(v);
        if (std::abs(v - rounded) <= 0.05) {
          lower[static_cast<std::size_t>(j)] = rounded;
          upper[static_cast<std::size_t>(j)] = rounded;
        }
      }
      const int j =
          most_fractional(model, current.values, options_.integrality_tol);
      if (j < 0) return;
      const double fixed =
          std::round(current.values[static_cast<std::size_t>(j)]);
      lower[static_cast<std::size_t>(j)] = fixed;
      upper[static_cast<std::size_t>(j)] = fixed;
      current = lp_solver.solve(model, lower, upper);
      result.lp_iterations += current.iterations;
      if (current.status != SolveStatus::kOptimal) return;
      if (have_incumbent && sense_sign * current.objective >= incumbent) {
        return;
      }
    }
  };

  // Root relaxation.
  LpSolution root = lp_solver.solve(model, root_lower, root_upper);
  result.lp_iterations += root.iterations;
  ++result.nodes;
  switch (root.status) {
    case SolveStatus::kInfeasible:
      result.status = MilpStatus::kInfeasible;
      return result;
    case SolveStatus::kUnbounded:
      result.status = MilpStatus::kUnbounded;
      return result;
    case SolveStatus::kIterationLimit:
      result.status = MilpStatus::kNoSolutionFound;
      return result;
    case SolveStatus::kOptimal:
      break;
  }
  global_bound = sense_sign * root.objective;

  if (all_integral(model, root.values, options_.integrality_tol)) {
    try_incumbent(root.values, root.objective);
    result.status = MilpStatus::kOptimal;
    result.objective = sense_sign * incumbent;
    result.best_bound = sense_sign * global_bound;
    result.values = std::move(incumbent_values);
    return result;
  }
  if (options_.root_dive) {
    dive(root_lower, root_upper, root);
  }

  OpenNodes open;
  {
    auto root_node = std::make_shared<Node>();
    root_node->lower = root_lower;
    root_node->upper = root_upper;
    root_node->parent_bound = sense_sign * root.objective;
    open.push(std::move(root_node));
  }

  const auto gap_closed = [&]() {
    if (!have_incumbent) return false;
    const double denom = std::max(1.0, std::abs(incumbent));
    return (incumbent - global_bound) / denom <= options_.relative_gap;
  };

  bool budget_exhausted = false;
  while (!open.empty()) {
    // The best open node defines the global bound.
    global_bound = open.best_bound();
    if (gap_closed()) break;
    if (result.nodes >= options_.max_nodes || out_of_time()) {
      budget_exhausted = true;
      break;
    }
    const std::shared_ptr<Node> node =
        open.pop(/*depth_first=*/!have_incumbent);
    if (have_incumbent && node->parent_bound >= incumbent - 1e-12) {
      continue;  // pruned by bound
    }

    const LpSolution relaxed =
        lp_solver.solve(model, node->lower, node->upper);
    result.lp_iterations += relaxed.iterations;
    ++result.nodes;
    if (relaxed.status == SolveStatus::kInfeasible) continue;
    if (relaxed.status == SolveStatus::kIterationLimit) {
      budget_exhausted = true;
      continue;
    }
    if (relaxed.status == SolveStatus::kUnbounded) {
      // A bounded-root MILP node cannot become unbounded by tightening
      // bounds; treat defensively as a failed node.
      continue;
    }
    const double node_bound = sense_sign * relaxed.objective;
    if (have_incumbent && node_bound >= incumbent - 1e-12) continue;

    if (all_integral(model, relaxed.values, options_.integrality_tol)) {
      try_incumbent(relaxed.values, relaxed.objective);
      continue;
    }

    const int j =
        most_fractional(model, relaxed.values, options_.integrality_tol);
    const double v = relaxed.values[static_cast<std::size_t>(j)];
    // Down child: x_j <= floor(v).
    {
      auto child = std::make_shared<Node>();
      child->lower = node->lower;
      child->upper = node->upper;
      child->upper[static_cast<std::size_t>(j)] = std::floor(v);
      child->parent_bound = node_bound;
      child->depth = node->depth + 1;
      if (child->lower[static_cast<std::size_t>(j)] <=
          child->upper[static_cast<std::size_t>(j)]) {
        open.push(std::move(child));
      }
    }
    // Up child: x_j >= ceil(v).
    {
      auto child = std::make_shared<Node>();
      child->lower = node->lower;
      child->upper = node->upper;
      child->lower[static_cast<std::size_t>(j)] = std::ceil(v);
      child->parent_bound = node_bound;
      child->depth = node->depth + 1;
      if (child->lower[static_cast<std::size_t>(j)] <=
          child->upper[static_cast<std::size_t>(j)]) {
        open.push(std::move(child));
      }
    }
  }

  if (open.empty() && !budget_exhausted) {
    // Exhausted the tree: the incumbent (if any) is optimal.
    global_bound = have_incumbent ? incumbent : global_bound;
  }

  if (have_incumbent) {
    result.status = (!budget_exhausted && (open.empty() || gap_closed()))
                        ? MilpStatus::kOptimal
                        : MilpStatus::kFeasible;
    result.objective = sense_sign * incumbent;
    result.values = std::move(incumbent_values);
  } else {
    result.status = budget_exhausted ? MilpStatus::kNoSolutionFound
                                     : MilpStatus::kInfeasible;
  }
  result.best_bound = sense_sign * std::min(global_bound,
                                            have_incumbent ? incumbent
                                                           : global_bound);
  return result;
}

}  // namespace etransform::milp
