#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "common/error.h"
#include "common/logging.h"
#include "telemetry/trace.h"

namespace etransform::milp {

namespace {

using lp::LpSolution;
using lp::Model;
using lp::SimplexSolver;
using lp::SolveStatus;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Incumbent/bound trace entries kept per solve. Bounds memory on
/// pathological trees where the dual bound moves at almost every node.
constexpr std::size_t kMaxTracePoints = 4096;

/// One open node: a set of tightened variable bounds plus the parent's
/// relaxation value used for best-first ordering and the parent's optimal
/// basis used to warm-start this node's LP (shared, not copied, between
/// siblings).
struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  std::shared_ptr<const lp::BasisSnapshot> parent_basis;
  double parent_bound = 0.0;
  int depth = 0;
};

/// Open-node pool with hybrid selection: depth-first while no incumbent
/// exists (plunging to a first integral leaf quickly), best-bound once one
/// does (tightening the global bound for pruning and gap termination).
class OpenNodes {
 public:
  void push(std::shared_ptr<Node> node) { nodes_.push_back(std::move(node)); }

  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }

  /// Smallest parent bound among open nodes (the global bound).
  [[nodiscard]] double best_bound() const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& node : nodes_) {
      best = std::min(best, node->parent_bound);
    }
    return best;
  }

  std::shared_ptr<Node> pop(bool depth_first) {
    std::size_t pick = nodes_.size() - 1;  // newest (deepest) by default
    if (!depth_first) {
      for (std::size_t k = 0; k < nodes_.size(); ++k) {
        if (nodes_[k]->parent_bound < nodes_[pick]->parent_bound) pick = k;
      }
    }
    std::shared_ptr<Node> node = std::move(nodes_[pick]);
    nodes_[pick] = std::move(nodes_.back());
    nodes_.pop_back();
    return node;
  }

 private:
  std::vector<std::shared_ptr<Node>> nodes_;
};

/// Index of the most fractional integer variable, or -1 if all integral.
int most_fractional(const Model& model, const std::vector<double>& values,
                    double tol) {
  int best = -1;
  double best_score = tol;  // distance from the nearest integer, in (0, 0.5]
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    const double v = values[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    const double score = std::min(frac, 1.0 - frac);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

bool all_integral(const Model& model, const std::vector<double>& values,
                  double tol) {
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    const double v = values[static_cast<std::size_t>(j)];
    if (std::abs(v - std::round(v)) > tol) return false;
  }
  return true;
}

/// Snaps near-integral values exactly onto integers.
void snap_integers(const Model& model, std::vector<double>& values,
                   double tol) {
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double& v = values[static_cast<std::size_t>(j)];
    const double r = std::round(v);
    if (std::abs(v - r) <= tol) v = r;
  }
}

}  // namespace

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnbounded: return "unbounded";
    case MilpStatus::kNoSolutionFound: return "no_solution_found";
    case MilpStatus::kTimeLimit: return "time_limit";
    case MilpStatus::kCancelled: return "cancelled";
  }
  return "?";
}

BranchAndBoundSolver::BranchAndBoundSolver(MilpOptions options)
    : options_(options) {}

MilpSolution BranchAndBoundSolver::solve(const Model& model,
                                         SolveContext& ctx) const {
  model.validate();
  // time_limit_ms tightens — never loosens — the caller's deadline.
  const DeadlineGuard guard(
      ctx, options_.time_limit_ms > 0
               ? Deadline::after_ms(static_cast<double>(options_.time_limit_ms))
               : Deadline::unlimited());
  SolveScope scope(ctx, "branch_and_bound");
  MilpSolution result = solve_impl(model, ctx, scope.stats());
  scope.close();
  result.stats = scope.stats();
  return result;
}

MilpSolution BranchAndBoundSolver::solve_impl(const Model& model,
                                              SolveContext& ctx,
                                              SolveStats& stats) const {
  // Cancellation beats the deadline when both apply.
  const auto interruption = [&ctx]() -> std::optional<MilpStatus> {
    if (ctx.cancelled()) return MilpStatus::kCancelled;
    if (ctx.deadline().expired()) return MilpStatus::kTimeLimit;
    return std::nullopt;
  };
  const auto milp_status_of_lp = [](SolveStatus status) {
    return status == SolveStatus::kCancelled ? MilpStatus::kCancelled
                                             : MilpStatus::kTimeLimit;
  };

  const double sense_sign = model.sense() == lp::Sense::kMinimize ? 1.0 : -1.0;
  // Internally everything is a minimization of sense_sign * objective.
  const SimplexSolver lp_solver(options_.lp_options);
  // The standard form is bounds-independent: build it once and share it
  // across the root, the dive, and every node (only bounds change per node).
  const lp::PreparedLp prep(model);
  long long warm_started_nodes = 0;
  const auto solve_node = [&](const std::vector<double>& lower,
                              const std::vector<double>& upper,
                              const lp::BasisSnapshot* warm) {
    LpSolution lp = lp_solver.solve(
        prep, lower, upper, ctx, options_.warm_start_nodes ? warm : nullptr);
    if (lp.warm_started) ++warm_started_nodes;
    return lp;
  };

  MilpSolution result;
  const int n = model.num_variables();
  std::vector<double> root_lower(static_cast<std::size_t>(n));
  std::vector<double> root_upper(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const auto& v = model.variable(j);
    // Integer bounds can be pre-rounded inward.
    root_lower[static_cast<std::size_t>(j)] =
        v.is_integer && std::isfinite(v.lower) ? std::ceil(v.lower - 1e-9)
                                               : v.lower;
    root_upper[static_cast<std::size_t>(j)] =
        v.is_integer && std::isfinite(v.upper) ? std::floor(v.upper + 1e-9)
                                               : v.upper;
  }

  bool have_incumbent = false;
  double incumbent = 0.0;  // in internal (minimization) orientation
  std::vector<double> incumbent_values;
  double global_bound = -lp::kInfinity;

  const auto record_trace = [&](double bound_internal) {
    if (stats.trace.size() >= kMaxTracePoints) return;
    TracePoint point;
    point.time_ms = ctx.elapsed_ms();
    point.node = result.nodes;
    point.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
    point.bound = sense_sign * bound_internal;
    stats.trace.push_back(point);
  };

  const auto try_incumbent = [&](const std::vector<double>& values,
                                 double objective_model_sense) {
    const double internal = sense_sign * objective_model_sense;
    if (!have_incumbent || internal < incumbent - 1e-12) {
      have_incumbent = true;
      incumbent = internal;
      incumbent_values = values;
      snap_integers(model, incumbent_values, options_.integrality_tol);
      stats.add("incumbents", 1.0);
      record_trace(global_bound);
      if (ctx.events.on_incumbent) {
        IncumbentEvent event;
        event.node = result.nodes;
        event.objective = objective_model_sense;
        event.time_ms = ctx.elapsed_ms();
        ctx.events.on_incumbent(event);
      }
      ET_LOG(kDebug) << "milp: new incumbent " << objective_model_sense;
    }
  };

  // Diving heuristic: at every step fix *all* nearly-integral integer
  // variables plus the single most fractional one, then re-solve. Fixing in
  // bulk keeps dives to a handful of LP solves even on thousands of
  // binaries; if a bulk fix turns infeasible the dive simply aborts and
  // branch-and-bound proceeds.
  const auto dive = [&](std::vector<double> lower, std::vector<double> upper,
                        const LpSolution& start) {
    SolveScope dive_scope(ctx, "root_dive");
    LpSolution current = start;
    for (int depth = 0; depth < 64; ++depth) {
      if (all_integral(model, current.values, options_.integrality_tol)) {
        try_incumbent(current.values, current.objective);
        return;
      }
      for (int j = 0; j < n; ++j) {
        if (!model.variable(j).is_integer) continue;
        const double v = current.values[static_cast<std::size_t>(j)];
        const double rounded = std::round(v);
        if (std::abs(v - rounded) <= 0.05) {
          lower[static_cast<std::size_t>(j)] = rounded;
          upper[static_cast<std::size_t>(j)] = rounded;
        }
      }
      const int j =
          most_fractional(model, current.values, options_.integrality_tol);
      if (j < 0) return;
      const double fixed =
          std::round(current.values[static_cast<std::size_t>(j)]);
      lower[static_cast<std::size_t>(j)] = fixed;
      upper[static_cast<std::size_t>(j)] = fixed;
      current = solve_node(lower, upper, current.basis.get());
      result.lp_iterations += current.iterations;
      if (current.status != SolveStatus::kOptimal) return;
      if (have_incumbent && sense_sign * current.objective >= incumbent) {
        return;
      }
    }
  };

  // Root relaxation.
  LpSolution root;
  {
    SolveScope root_scope(ctx, "root_lp");
    root = solve_node(root_lower, root_upper, nullptr);
  }
  result.lp_iterations += root.iterations;
  ++result.nodes;
  switch (root.status) {
    case SolveStatus::kInfeasible:
      result.status = MilpStatus::kInfeasible;
      return result;
    case SolveStatus::kUnbounded:
      result.status = MilpStatus::kUnbounded;
      return result;
    case SolveStatus::kIterationLimit:
    case SolveStatus::kNumericalError:
      result.status = MilpStatus::kNoSolutionFound;
      return result;
    case SolveStatus::kTimeLimit:
    case SolveStatus::kCancelled:
      // Interrupted before any bound or incumbent existed.
      result.status = milp_status_of_lp(root.status);
      stats.add("nodes", result.nodes);
      return result;
    case SolveStatus::kOptimal:
      break;
  }
  global_bound = sense_sign * root.objective;
  record_trace(global_bound);
  if (ctx.events.on_node) {
    NodeEvent event;
    event.node = result.nodes;
    event.depth = 0;
    event.relaxation = root.objective;
    event.best_bound = sense_sign * global_bound;
    event.incumbent = kNaN;
    event.open_nodes = 0;
    ctx.events.on_node(event);
  }

  if (all_integral(model, root.values, options_.integrality_tol)) {
    try_incumbent(root.values, root.objective);
    result.status = MilpStatus::kOptimal;
    result.objective = sense_sign * incumbent;
    result.best_bound = sense_sign * global_bound;
    result.values = std::move(incumbent_values);
    stats.add("nodes", result.nodes);
    return result;
  }
  if (options_.root_dive) {
    dive(root_lower, root_upper, root);
  }

  OpenNodes open;
  {
    auto root_node = std::make_shared<Node>();
    root_node->lower = root_lower;
    root_node->upper = root_upper;
    root_node->parent_basis = root.basis;
    root_node->parent_bound = sense_sign * root.objective;
    open.push(std::move(root_node));
  }

  const auto gap_closed = [&]() {
    if (!have_incumbent) return false;
    const double denom = std::max(1.0, std::abs(incumbent));
    return (incumbent - global_bound) / denom <= options_.relative_gap;
  };

  bool budget_exhausted = false;
  std::optional<MilpStatus> interrupted;
  // Per-node spans would dominate the trace; batch them so a million-node
  // search stays viewable. Each span covers up to kNodesPerBatchSpan nodes.
  constexpr long long kNodesPerBatchSpan = 256;
  std::optional<telemetry::TraceSpan> batch_span;
  long long next_batch_node = 0;
  while (!open.empty()) {
    if (telemetry::TraceRecorder* rec = ctx.trace();
        rec != nullptr && result.nodes >= next_batch_node) {
      batch_span.reset();
      batch_span.emplace(rec, "milp", "bnb.node_batch");
      next_batch_node = result.nodes + kNodesPerBatchSpan;
    }
    // The best open node defines the global bound.
    const double fresh_bound = open.best_bound();
    if (fresh_bound > global_bound + 1e-12) {
      stats.add("bound_improvements", 1.0);
      record_trace(fresh_bound);
      if (ctx.events.on_bound_improvement) {
        BoundEvent event;
        event.node = result.nodes;
        event.bound = sense_sign * fresh_bound;
        event.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
        ctx.events.on_bound_improvement(event);
      }
    }
    global_bound = fresh_bound;
    if (gap_closed()) break;
    if (result.nodes >= options_.max_nodes) {
      budget_exhausted = true;
      break;
    }
    interrupted = interruption();
    if (interrupted) break;
    const std::shared_ptr<Node> node =
        open.pop(/*depth_first=*/!have_incumbent);
    if (have_incumbent && node->parent_bound >= incumbent - 1e-12) {
      continue;  // pruned by bound
    }

    const LpSolution relaxed =
        solve_node(node->lower, node->upper, node->parent_basis.get());
    result.lp_iterations += relaxed.iterations;
    ++result.nodes;
    if (ctx.events.on_node) {
      NodeEvent event;
      event.node = result.nodes;
      event.depth = node->depth;
      event.relaxation = relaxed.status == SolveStatus::kOptimal
                             ? relaxed.objective
                             : kNaN;
      event.best_bound = sense_sign * global_bound;
      event.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
      event.open_nodes = open.size();
      ctx.events.on_node(event);
    }
    if (relaxed.status == SolveStatus::kInfeasible) continue;
    if (relaxed.status == SolveStatus::kIterationLimit) {
      budget_exhausted = true;
      continue;
    }
    if (relaxed.status == SolveStatus::kTimeLimit ||
        relaxed.status == SolveStatus::kCancelled) {
      // The deadline fired inside this node's LP; its bound is unusable,
      // so drop the node and unwind with the partial tree.
      interrupted = milp_status_of_lp(relaxed.status);
      break;
    }
    if (relaxed.status == SolveStatus::kUnbounded ||
        relaxed.status == SolveStatus::kNumericalError) {
      // A bounded-root MILP node cannot become unbounded by tightening
      // bounds, and a numerically failed node has no usable bound; treat
      // either defensively as a failed node.
      continue;
    }
    const double node_bound = sense_sign * relaxed.objective;
    if (have_incumbent && node_bound >= incumbent - 1e-12) continue;

    if (all_integral(model, relaxed.values, options_.integrality_tol)) {
      try_incumbent(relaxed.values, relaxed.objective);
      continue;
    }

    const int j =
        most_fractional(model, relaxed.values, options_.integrality_tol);
    const double v = relaxed.values[static_cast<std::size_t>(j)];
    // Down child: x_j <= floor(v).
    {
      auto child = std::make_shared<Node>();
      child->lower = node->lower;
      child->upper = node->upper;
      child->upper[static_cast<std::size_t>(j)] = std::floor(v);
      child->parent_basis = relaxed.basis;
      child->parent_bound = node_bound;
      child->depth = node->depth + 1;
      if (child->lower[static_cast<std::size_t>(j)] <=
          child->upper[static_cast<std::size_t>(j)]) {
        open.push(std::move(child));
      }
    }
    // Up child: x_j >= ceil(v).
    {
      auto child = std::make_shared<Node>();
      child->lower = node->lower;
      child->upper = node->upper;
      child->lower[static_cast<std::size_t>(j)] = std::ceil(v);
      child->parent_basis = relaxed.basis;
      child->parent_bound = node_bound;
      child->depth = node->depth + 1;
      if (child->lower[static_cast<std::size_t>(j)] <=
          child->upper[static_cast<std::size_t>(j)]) {
        open.push(std::move(child));
      }
    }
  }

  batch_span.reset();

  if (open.empty() && !budget_exhausted && !interrupted) {
    // Exhausted the tree: the incumbent (if any) is optimal.
    global_bound = have_incumbent ? incumbent : global_bound;
  }

  if (interrupted) {
    // Deadline or cancellation: report exactly that, with the incumbent (if
    // any) and the best proven bound so far as valid partial results.
    result.status = *interrupted;
    if (have_incumbent) {
      result.objective = sense_sign * incumbent;
      result.values = std::move(incumbent_values);
    }
  } else if (have_incumbent) {
    result.status = (!budget_exhausted && (open.empty() || gap_closed()))
                        ? MilpStatus::kOptimal
                        : MilpStatus::kFeasible;
    result.objective = sense_sign * incumbent;
    result.values = std::move(incumbent_values);
  } else {
    result.status = budget_exhausted ? MilpStatus::kNoSolutionFound
                                     : MilpStatus::kInfeasible;
  }
  result.best_bound = sense_sign * std::min(global_bound,
                                            have_incumbent ? incumbent
                                                           : global_bound);
  stats.add("nodes", result.nodes);
  stats.add("warm_started_nodes", static_cast<double>(warm_started_nodes));
  record_trace(global_bound);
  return result;
}

}  // namespace etransform::milp
