#include "milp/branch_and_bound.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "common/progress.h"
#include "common/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace etransform::milp {

namespace {

using lp::LpEngine;
using lp::LpSolution;
using lp::LpStartBasis;
using lp::Model;
using lp::SolveStatus;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Incumbent/bound trace entries kept per solve. Bounds memory on
/// pathological trees where the dual bound moves at almost every node.
constexpr std::size_t kMaxTracePoints = 4096;

/// Pseudocost estimates are floored at this so a zero-degradation direction
/// never zeroes out the product score.
constexpr double kScoreEps = 1e-6;

/// Scoring value for a branching direction a strong-branching probe proved
/// infeasible (fixing the variable prunes the subtree outright).
constexpr double kInfeasibleScore = 1e8;

/// One open node: a set of tightened variable bounds plus the parent's
/// relaxation value used for best-first ordering and the parent's optimal
/// basis used to warm-start this node's LP (shared, not copied, between
/// siblings). `branch_*` records how this node was created so its LP value
/// can feed the branching variable's pseudocost.
struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  std::shared_ptr<const lp::BasisSnapshot> parent_basis;
  double parent_bound = 0.0;
  int depth = 0;
  int branch_var = -1;
  bool branch_up = false;
  double branch_frac = 0.0;  // parent fractional part of branch_var
  /// Worker that pushed this node (-1: the root / a sequential phase). Only
  /// used for the per-worker steal tallies of the parallel search.
  int producer = -1;
};

/// Open-node pool with hybrid selection: depth-first while no incumbent
/// exists (plunging to a first integral leaf quickly), best-bound once one
/// does (tightening the global bound for pruning and gap termination).
class OpenNodes {
 public:
  void push(std::shared_ptr<Node> node) { nodes_.push_back(std::move(node)); }

  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }

  /// Smallest parent bound among open nodes (the global bound).
  [[nodiscard]] double best_bound() const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& node : nodes_) {
      best = std::min(best, node->parent_bound);
    }
    return best;
  }

  std::shared_ptr<Node> pop(bool depth_first) {
    std::size_t pick = nodes_.size() - 1;  // newest (deepest) by default
    if (!depth_first) {
      for (std::size_t k = 0; k < nodes_.size(); ++k) {
        if (nodes_[k]->parent_bound < nodes_[pick]->parent_bound) pick = k;
      }
    }
    std::shared_ptr<Node> node = std::move(nodes_[pick]);
    nodes_[pick] = std::move(nodes_.back());
    nodes_.pop_back();
    return node;
  }

 private:
  std::vector<std::shared_ptr<Node>> nodes_;
};

/// Index of the most fractional integer variable, or -1 if all integral.
int most_fractional(const Model& model, const std::vector<double>& values,
                    double tol) {
  int best = -1;
  double best_score = tol;  // distance from the nearest integer, in (0, 0.5]
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    const double v = values[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    const double score = std::min(frac, 1.0 - frac);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

bool all_integral(const Model& model, const std::vector<double>& values,
                  double tol) {
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    const double v = values[static_cast<std::size_t>(j)];
    if (std::abs(v - std::round(v)) > tol) return false;
  }
  return true;
}

/// Snaps near-integral values exactly onto integers.
void snap_integers(const Model& model, std::vector<double>& values,
                   double tol) {
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double& v = values[static_cast<std::size_t>(j)];
    const double r = std::round(v);
    if (std::abs(v - r) <= tol) v = r;
  }
}

/// Per-variable branching history: average objective degradation per unit of
/// fraction, per direction. Variables without observations inherit the
/// global average (a freshly measured strong-branch value beats both; see
/// select_branch in solve_impl). Internally synchronized: the parallel tree
/// search shares one instance across all workers, and the uncontended lock
/// is noise next to the LP solve every access rides along with.
class Pseudocosts {
 public:
  explicit Pseudocosts(int num_vars)
      : down_sum_(static_cast<std::size_t>(num_vars), 0.0),
        up_sum_(static_cast<std::size_t>(num_vars), 0.0),
        down_n_(static_cast<std::size_t>(num_vars), 0),
        up_n_(static_cast<std::size_t>(num_vars), 0) {}

  void update(int j, bool up, double per_frac) {
    const std::lock_guard<std::mutex> lock(mu_);
    per_frac = std::max(per_frac, 0.0);
    if (up) {
      up_sum_[static_cast<std::size_t>(j)] += per_frac;
      ++up_n_[static_cast<std::size_t>(j)];
      global_up_sum_ += per_frac;
      ++global_up_n_;
    } else {
      down_sum_[static_cast<std::size_t>(j)] += per_frac;
      ++down_n_[static_cast<std::size_t>(j)];
      global_down_sum_ += per_frac;
      ++global_down_n_;
    }
  }

  [[nodiscard]] double estimate(int j, bool up) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const int n = up ? up_n_[static_cast<std::size_t>(j)]
                     : down_n_[static_cast<std::size_t>(j)];
    if (n > 0) {
      const double sum = up ? up_sum_[static_cast<std::size_t>(j)]
                            : down_sum_[static_cast<std::size_t>(j)];
      return sum / n;
    }
    const long long gn = up ? global_up_n_ : global_down_n_;
    if (gn > 0) return (up ? global_up_sum_ : global_down_sum_) / gn;
    return 1.0;
  }

  /// Observations in the weaker direction — the reliability measure.
  [[nodiscard]] int observations(int j) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return std::min(down_n_[static_cast<std::size_t>(j)],
                    up_n_[static_cast<std::size_t>(j)]);
  }

 private:
  mutable std::mutex mu_;
  std::vector<double> down_sum_;
  std::vector<double> up_sum_;
  std::vector<int> down_n_;
  std::vector<int> up_n_;
  double global_down_sum_ = 0.0;
  double global_up_sum_ = 0.0;
  long long global_down_n_ = 0;
  long long global_up_n_ = 0;
};

/// Tree-search workers for SearchOptions::threads: 1 keeps the sequential
/// loop, > 1 is taken literally, <= 0 means one worker per hardware thread.
int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

/// Everything one tree-search worker owns privately, so node expansions
/// never share mutable state: a SolveContext of its own (SolveScope nesting
/// is stack-like and must stay single-threaded; cancellation is linked back
/// to the solve's context and the deadline is copied), its own PreparedLp
/// over the (possibly cut-strengthened) tree model, and its own LpEngines.
/// Per-worker PreparedLps are built from the same model, so their internal
/// column/row layout is identical — which is what lets a BasisSnapshot
/// produced by one worker warm-start a sibling node on another worker with
/// LpStartBasis::Origin::kBoundChange, keeping the dual-simplex
/// reoptimization path intact across the frontier.
struct WorkerScratch {
  WorkerScratch(const lp::Model& tree_model,
                const lp::SimplexOptions& lp_options,
                const lp::SimplexOptions& sb_options,
                const SolveContext& parent)
      : prep(tree_model), engine(lp_options), sb_engine(sb_options) {
    ctx.set_deadline(parent.deadline());
    ctx.link_cancel_to(parent);
    ctx.set_trace(parent.trace());
    ctx.set_metrics(parent.metrics());
    ctx.set_trace_id(parent.trace_id());
    ctx.set_progress(parent.progress());
  }

  SolveContext ctx;
  lp::PreparedLp prep;
  LpEngine engine;
  LpEngine sb_engine;
  long long nodes = 0;        // node LPs this worker solved
  long long steals = 0;       // nodes popped that another worker produced
  long long incumbents = 0;   // incumbent improvements this worker found
  long long lp_iterations = 0;
  long long warm_started = 0;
  long long dual_reopt = 0;
};

}  // namespace

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnbounded: return "unbounded";
    case MilpStatus::kNoSolutionFound: return "no_solution_found";
    case MilpStatus::kTimeLimit: return "time_limit";
    case MilpStatus::kCancelled: return "cancelled";
  }
  return "?";
}

BranchAndBoundSolver::BranchAndBoundSolver(SolverOptions options)
    : options_(options) {}

void BranchAndBoundSolver::add_cut_generator(
    std::shared_ptr<CutGenerator> generator) {
  generators_.push_back(std::move(generator));
}

MilpSolution BranchAndBoundSolver::solve(
    const Model& model, SolveContext& ctx,
    const lp::BasisSnapshot* root_warm) const {
  model.validate();
  // time_limit_ms tightens — never loosens — the caller's deadline.
  const DeadlineGuard guard(
      ctx,
      options_.search.time_limit_ms > 0
          ? Deadline::after_ms(static_cast<double>(options_.search.time_limit_ms))
          : Deadline::unlimited());
  SolveScope scope(ctx, "branch_and_bound");
  MilpSolution result = solve_impl(model, ctx, scope.stats(), root_warm);
  scope.close();
  result.stats = scope.stats();
  return result;
}

MilpSolution BranchAndBoundSolver::solve_impl(
    const Model& model, SolveContext& ctx, SolveStats& stats,
    const lp::BasisSnapshot* root_warm) const {
  // Cancellation beats the deadline when both apply.
  const auto interruption = [&ctx]() -> std::optional<MilpStatus> {
    if (ctx.cancelled()) return MilpStatus::kCancelled;
    if (ctx.deadline().expired()) return MilpStatus::kTimeLimit;
    return std::nullopt;
  };
  const auto milp_status_of_lp = [](SolveStatus status) {
    return status == SolveStatus::kCancelled ? MilpStatus::kCancelled
                                             : MilpStatus::kTimeLimit;
  };

  const double sense_sign = model.sense() == lp::Sense::kMinimize ? 1.0 : -1.0;
  const double integrality_tol = options_.search.integrality_tol;
  // Internally everything is a minimization of sense_sign * objective.
  const LpEngine lp_solver(options_.lp);
  // The standard form is bounds-independent: build it once and share it
  // across the root, the dive, and every node (only bounds change per
  // node). The root cutting loop may rebind `prep` to a strengthened form
  // over `cut_model` (base rows + accepted cut rows).
  lp::Model cut_model;
  auto prep = std::make_unique<lp::PreparedLp>(model);
  long long warm_started_nodes = 0;
  long long dual_reopt_nodes = 0;
  // Node re-solves differ from the basis-producing solve only in variable
  // bounds, so they restart with Origin::kBoundChange — the contract that
  // lets SolveMode::kAuto reoptimize with the dual simplex.
  const auto solve_node = [&](const std::vector<double>& lower,
                              const std::vector<double>& upper,
                              const lp::BasisSnapshot* warm) {
    LpSolution lp = lp_solver.solve(
        *prep, lower, upper, ctx,
        LpStartBasis(options_.search.warm_start_nodes ? warm : nullptr,
                     LpStartBasis::Origin::kBoundChange));
    if (lp.warm_started) ++warm_started_nodes;
    if (lp.used_dual) ++dual_reopt_nodes;
    return lp;
  };
  // Every return path stamps the reoptimization tallies exactly once —
  // cut rounds can run dual re-solves even when the strengthened root goes
  // integral and the tree is never explored.
  const auto stamp_reopt_counters = [&]() {
    stats.add("warm_started_nodes", static_cast<double>(warm_started_nodes));
    stats.add("dual_reopt_nodes", static_cast<double>(dual_reopt_nodes));
  };

  MilpSolution result;
  const int n = model.num_variables();
  std::vector<double> root_lower(static_cast<std::size_t>(n));
  std::vector<double> root_upper(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const auto& v = model.variable(j);
    // Integer bounds can be pre-rounded inward.
    root_lower[static_cast<std::size_t>(j)] =
        v.is_integer && std::isfinite(v.lower) ? std::ceil(v.lower - 1e-9)
                                               : v.lower;
    root_upper[static_cast<std::size_t>(j)] =
        v.is_integer && std::isfinite(v.upper) ? std::floor(v.upper + 1e-9)
                                               : v.upper;
  }

  bool have_incumbent = false;
  double incumbent = 0.0;  // in internal (minimization) orientation
  std::vector<double> incumbent_values;
  // Lock-free publication of the incumbent bound (internal orientation;
  // +inf when none). Parallel workers read it right before committing to a
  // node LP so an incumbent found on another thread prunes without waiting
  // for the frontier lock.
  std::atomic<double> incumbent_pub{std::numeric_limits<double>::infinity()};
  double global_bound = -lp::kInfinity;

  // Live progress: push a sample into the job's SolveProgress ring (when
  // attached) at every trace-worthy moment. Publication sites are
  // serialized — the frontier mutex in the async parallel search, this
  // thread everywhere else — which is the ring's single-writer contract.
  const auto publish_progress = [&](double bound_internal) {
    if (SolveProgress* progress = ctx.progress()) {
      const bool has_bound = bound_internal > -lp::kInfinity / 2;
      progress->publish(ctx.elapsed_ms(), result.nodes,
                        have_incumbent ? sense_sign * incumbent : 0.0,
                        have_incumbent, sense_sign * bound_internal,
                        has_bound);
    }
  };

  const auto record_trace = [&](double bound_internal) {
    // Before the cap: the stats trace is bounded history, the progress ring
    // wraps — a long solve must keep streaming samples past the cap.
    publish_progress(bound_internal);
    if (stats.trace.size() >= kMaxTracePoints) return;
    TracePoint point;
    point.time_ms = ctx.elapsed_ms();
    point.node = result.nodes;
    point.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
    point.bound = sense_sign * bound_internal;
    stats.trace.push_back(point);
  };

  const auto try_incumbent = [&](const std::vector<double>& values,
                                 double objective_model_sense) -> bool {
    const double internal = sense_sign * objective_model_sense;
    if (!have_incumbent || internal < incumbent - 1e-12) {
      have_incumbent = true;
      incumbent = internal;
      incumbent_pub.store(internal, std::memory_order_relaxed);
      incumbent_values = values;
      snap_integers(model, incumbent_values, integrality_tol);
      stats.add("incumbents", 1.0);
      record_trace(global_bound);
      if (ctx.events.on_incumbent) {
        IncumbentEvent event;
        event.node = result.nodes;
        event.objective = objective_model_sense;
        event.time_ms = ctx.elapsed_ms();
        ctx.events.on_incumbent(event);
      }
      ET_LOG(kDebug) << "milp: new incumbent " << objective_model_sense;
      return true;
    }
    return false;
  };

  // Diving heuristic: at every step fix *all* nearly-integral integer
  // variables plus the single most fractional one, then re-solve. Fixing in
  // bulk keeps dives to a handful of LP solves even on thousands of
  // binaries; if a bulk fix turns infeasible the dive simply aborts and
  // branch-and-bound proceeds.
  const auto dive = [&](std::vector<double> lower, std::vector<double> upper,
                        const LpSolution& start) {
    SolveScope dive_scope(ctx, "root_dive");
    LpSolution current = start;
    for (int depth = 0; depth < 64; ++depth) {
      if (all_integral(model, current.values, integrality_tol)) {
        try_incumbent(current.values, current.objective);
        return;
      }
      for (int j = 0; j < n; ++j) {
        if (!model.variable(j).is_integer) continue;
        const double v = current.values[static_cast<std::size_t>(j)];
        const double rounded = std::round(v);
        if (std::abs(v - rounded) <= 0.05) {
          lower[static_cast<std::size_t>(j)] = rounded;
          upper[static_cast<std::size_t>(j)] = rounded;
        }
      }
      const int j = most_fractional(model, current.values, integrality_tol);
      if (j < 0) return;
      const double fixed =
          std::round(current.values[static_cast<std::size_t>(j)]);
      lower[static_cast<std::size_t>(j)] = fixed;
      upper[static_cast<std::size_t>(j)] = fixed;
      current = solve_node(lower, upper, current.basis.get());
      result.lp_iterations += current.iterations;
      if (current.status != SolveStatus::kOptimal) return;
      if (have_incumbent && sense_sign * current.objective >= incumbent) {
        return;
      }
    }
  };

  // Root relaxation. `root_warm` (a clean-root basis from a previous solve
  // of a modified variant of this model — the iterative admin path) rides
  // the same bound-change restart contract as node re-solves.
  LpSolution root;
  {
    SolveScope root_scope(ctx, "root_lp");
    root = solve_node(root_lower, root_upper, root_warm);
  }
  result.lp_iterations += root.iterations;
  ++result.nodes;
  switch (root.status) {
    case SolveStatus::kInfeasible:
      result.status = MilpStatus::kInfeasible;
      return result;
    case SolveStatus::kUnbounded:
      result.status = MilpStatus::kUnbounded;
      return result;
    case SolveStatus::kIterationLimit:
    case SolveStatus::kNumericalError:
      if (root.status == SolveStatus::kNumericalError) {
        stats.add("numerical_nodes", 1.0);
      }
      result.status = MilpStatus::kNoSolutionFound;
      return result;
    case SolveStatus::kTimeLimit:
    case SolveStatus::kCancelled:
      // Interrupted before any bound or incumbent existed.
      result.status = milp_status_of_lp(root.status);
      stats.add("nodes", result.nodes);
      return result;
    case SolveStatus::kOptimal:
      break;
  }
  // The clean-root basis (over the unmodified model's standard form) is
  // what a future replan of a modified variant can restart from; the
  // cut-strengthened basis below has a different shape.
  result.root_basis = root.basis;
  global_bound = sense_sign * root.objective;
  record_trace(global_bound);
  if (ctx.events.on_node) {
    NodeEvent event;
    event.node = result.nodes;
    event.depth = 0;
    event.relaxation = root.objective;
    event.best_bound = sense_sign * global_bound;
    event.incumbent = kNaN;
    event.open_nodes = 0;
    ctx.events.on_node(event);
  }

  // ---- root cutting loop (cut-and-branch) --------------------------------
  // Cuts are separated only here, under the original bounds, so every
  // accepted row is valid for the whole tree. Each round: separate ->
  // purge aged cuts -> rebuild the standard form over base + pool ->
  // extend the previous basis via lp::extend_basis (new cut slacks enter
  // basic, leaving the old duals intact) -> re-solve with
  // Origin::kRowsAdded, so SolveMode::kAuto prices the violated cut rows
  // out with the dual simplex instead of a composite phase-1 repair.
  if (options_.cuts.enable && model.has_integer_variables()) {
    SolveScope cuts_scope(ctx, "cuts");
    SolveStats& cstats = cuts_scope.stats();
    std::vector<std::shared_ptr<CutGenerator>> generators = generators_;
    if (generators.empty()) {
      generators = default_cut_generators(options_.cuts);
    }

    CutPool pool;
    std::vector<long long> applied_ids;  // pool id per cut row in `prep`
    const int base_rows = prep->num_rows();
    LpSolution current = root;
    bool cuts_failed = false;
    std::optional<MilpStatus> cut_interrupt;

    const auto rebuild_and_resolve = [&]() -> bool {
      std::vector<int> old_row_of_new;
      old_row_of_new.reserve(static_cast<std::size_t>(base_rows) +
                             static_cast<std::size_t>(pool.size()));
      for (int r = 0; r < base_rows; ++r) old_row_of_new.push_back(r);
      std::vector<long long> new_ids;
      new_ids.reserve(static_cast<std::size_t>(pool.size()));
      lp::Model next = model;  // base rows keep their kept-row indices
      for (const Cut& cut : pool.cuts()) {
        next.add_constraint(cut.name, cut.terms, cut.relation, cut.rhs);
        int old_index = -1;
        for (std::size_t k = 0; k < applied_ids.size(); ++k) {
          if (applied_ids[k] == cut.id) {
            old_index = base_rows + static_cast<int>(k);
            break;
          }
        }
        old_row_of_new.push_back(old_index);
        new_ids.push_back(cut.id);
      }
      cut_model = std::move(next);
      auto next_prep = std::make_unique<lp::PreparedLp>(cut_model);
      const lp::BasisSnapshot warm =
          lp::extend_basis(*current.basis, prep->num_vars, old_row_of_new,
                           next_prep->num_rows(), next_prep->num_columns());
      prep = std::move(next_prep);
      applied_ids = std::move(new_ids);
      LpSolution next_sol = lp_solver.solve(
          *prep, root_lower, root_upper, ctx,
          LpStartBasis(&warm, LpStartBasis::Origin::kRowsAdded));
      result.lp_iterations += next_sol.iterations;
      if (next_sol.used_dual) ++dual_reopt_nodes;
      current = std::move(next_sol);
      return current.status == SolveStatus::kOptimal;
    };

    int rounds = 0;
    double round_obj = sense_sign * current.objective;
    int stalled_rounds = 0;
    if (!all_integral(model, current.values, integrality_tol)) {
      while (rounds < options_.cuts.max_rounds) {
        if (auto stop = interruption()) {
          cut_interrupt = stop;
          break;
        }
        const telemetry::TraceSpan round_span(ctx.trace(), "milp",
                                              "cuts.round");
        SeparationContext sctx;
        sctx.model = prep->model;
        sctx.prep = prep.get();
        sctx.lower = &root_lower;
        sctx.upper = &root_upper;
        sctx.options = options_.cuts;
        sctx.integrality_tol = integrality_tol;
        int fresh = 0;
        for (const auto& generator : generators) {
          const long long before = pool.total_generated();
          fresh += generator->separate(sctx, current, pool);
          cstats.add(std::string(generator->name()) + "_cuts",
                     static_cast<double>(pool.total_generated() - before));
        }
        // A dry round still counts: "rounds" reports separation attempts,
        // which is what the stats validator keys on.
        ++rounds;
        if (fresh == 0) break;
        pool.purge(options_.cuts.max_inactive_rounds);
        if (!rebuild_and_resolve()) {
          cuts_failed = true;
          break;
        }
        pool.record_activity(current.values, 1e-7);
        if (all_integral(model, current.values, integrality_tol)) break;
        // Tailing off: separation that no longer moves the bound just piles
        // rows onto every node LP — stop after two flat rounds.
        const double obj = sense_sign * current.objective;
        const double gain = (obj - round_obj) / std::max(1.0, std::abs(obj));
        stalled_rounds = gain < options_.cuts.tailoff ? stalled_rounds + 1 : 0;
        round_obj = obj;
        if (stalled_rounds >= 2) break;
      }
      // Final aging sweep: rows that went slack in the last rounds leave
      // before the tree is explored (they would only slow node LPs).
      if (!cuts_failed && !cut_interrupt &&
          pool.purge(options_.cuts.max_inactive_rounds) > 0) {
        if (!rebuild_and_resolve()) cuts_failed = true;
      }
    }

    if (cuts_failed) {
      // Defensive: a valid cut system cannot make the root infeasible, but
      // an interrupted or numerically failed re-solve must not poison the
      // tree. Drop every cut and restore the clean root relaxation.
      const SolveStatus failed_status = current.status;
      ET_LOG(kWarning) << "milp: cut loop LP ended ("
                       << lp::to_string(failed_status)
                       << "); discarding " << pool.size() << " cuts";
      applied_ids.clear();
      prep = std::make_unique<lp::PreparedLp>(model);
      current = lp_solver.solve(
          *prep, root_lower, root_upper, ctx,
          LpStartBasis(root.basis.get(), LpStartBasis::Origin::kBoundChange));
      result.lp_iterations += current.iterations;
      if (failed_status == SolveStatus::kTimeLimit ||
          failed_status == SolveStatus::kCancelled) {
        cut_interrupt = milp_status_of_lp(failed_status);
      }
    }

    result.cuts.rounds = rounds;
    result.cuts.generated = pool.total_generated();
    result.cuts.applied = cuts_failed ? 0 : pool.size();
    result.cuts.purged = pool.total_purged();
    cstats.add("rounds", static_cast<double>(result.cuts.rounds));
    cstats.add("generated", static_cast<double>(result.cuts.generated));
    cstats.add("applied", static_cast<double>(result.cuts.applied));
    cstats.add("purged", static_cast<double>(result.cuts.purged));
    if (telemetry::MetricsRegistry* mreg = ctx.metrics()) {
      mreg->counter("etransform_milp_cut_rounds_total",
                    "Root cut separation rounds")
          .add(static_cast<double>(result.cuts.rounds));
      mreg->counter("etransform_milp_cuts_generated_total",
                    "Cuts accepted into the pool")
          .add(static_cast<double>(result.cuts.generated));
      mreg->counter("etransform_milp_cuts_applied_total",
                    "Cut rows in the final root relaxation")
          .add(static_cast<double>(result.cuts.applied));
      mreg->counter("etransform_milp_cuts_purged_total",
                    "Cuts aged out by the activity policy")
          .add(static_cast<double>(result.cuts.purged));
    }

    if (current.status == SolveStatus::kOptimal) {
      // Adopt the strengthened root; cuts only tighten, but guard against
      // numerical dips so the proven bound never regresses.
      root = std::move(current);
      if (sense_sign * root.objective > global_bound) {
        global_bound = sense_sign * root.objective;
        record_trace(global_bound);
      }
    } else if (cut_interrupt) {
      result.status = *cut_interrupt;
      result.best_bound = sense_sign * global_bound;
      stats.add("nodes", result.nodes);
      stamp_reopt_counters();
      return result;
    } else {
      // Clean-root restore failed numerically: no usable relaxation.
      result.status = MilpStatus::kNoSolutionFound;
      result.best_bound = sense_sign * global_bound;
      stats.add("nodes", result.nodes);
      stamp_reopt_counters();
      return result;
    }
    if (cut_interrupt) {
      // Interrupted mid-loop but the (possibly strengthened) root is
      // optimal: unwind with the valid bound.
      result.status = *cut_interrupt;
      result.best_bound = sense_sign * global_bound;
      stats.add("nodes", result.nodes);
      stamp_reopt_counters();
      return result;
    }
  }

  if (all_integral(model, root.values, integrality_tol)) {
    try_incumbent(root.values, root.objective);
    result.status = MilpStatus::kOptimal;
    result.objective = sense_sign * incumbent;
    result.best_bound = sense_sign * global_bound;
    result.values = std::move(incumbent_values);
    stats.add("nodes", result.nodes);
    stamp_reopt_counters();
    return result;
  }
  if (options_.search.root_dive) {
    dive(root_lower, root_upper, root);
  }

  // ---- branching machinery ----------------------------------------------
  // Shared across tree-search workers: the pseudocost table is internally
  // locked, the probe budget and tallies are atomics (a worker may overshoot
  // the budget by at most one probe per peer — harmless for a heuristic).
  Pseudocosts pc(n);
  std::atomic<long long> pseudocost_updates{0};
  std::atomic<long long> strong_branch_probes{0};
  std::atomic<int> probe_budget{options_.branching.max_strong_branch_probes};
  // Simplex iterations spent by probes issued from sequential phases (the
  // sequential loop and deterministic apply phases); workers tally their own.
  long long seq_probe_iters = 0;
  lp::SimplexOptions sb_lp_options = options_.lp;
  sb_lp_options.max_iterations = options_.branching.strong_branch_iterations;
  const LpEngine sb_solver(sb_lp_options);
  telemetry::Histogram* pc_init_histogram = nullptr;
  if (telemetry::MetricsRegistry* mreg = ctx.metrics();
      mreg != nullptr &&
      options_.branching.rule == BranchingOptions::Rule::kPseudocost) {
    pc_init_histogram = &mreg->histogram(
        "etransform_milp_pseudocost_init_degradation",
        "Per-unit-fraction objective degradation measured by "
        "strong-branching probes",
        telemetry::MetricsRegistry::log_buckets(1e-4, 1e4, 10.0));
    mreg->counter("etransform_milp_strong_branch_probes_total",
                  "Strong-branching probes (two child LPs each)");
  }

  // Iteration-capped probe of one branching direction from the node's own
  // optimal basis. Returns the measured per-unit-fraction degradation, the
  // infeasible sentinel, or NaN when the probe was inconclusive. A worker
  // probes on its own engine/prep/context (`w`); sequential phases pass
  // nullptr and use the solve-level machinery. Deliberately does NOT touch
  // the pseudocost table: measurements are folded in later, in candidate
  // order, so the update sequence is identical whether the probes ran on
  // one engine or eight (see select_branch).
  const auto probe_direction = [&](const Node& node, const LpSolution& relaxed,
                                   double node_bound, int j, bool up,
                                   double frac_moved,
                                   WorkerScratch* w) -> double {
    std::vector<double> lower = node.lower;
    std::vector<double> upper = node.upper;
    const double v = relaxed.values[static_cast<std::size_t>(j)];
    if (up) {
      lower[static_cast<std::size_t>(j)] = std::ceil(v);
    } else {
      upper[static_cast<std::size_t>(j)] = std::floor(v);
    }
    const LpSolution sol =
        (w != nullptr ? w->sb_engine : sb_solver)
            .solve(w != nullptr ? w->prep : *prep, lower, upper,
                   w != nullptr ? w->ctx : ctx,
                   LpStartBasis(relaxed.basis.get(),
                                LpStartBasis::Origin::kBoundChange));
    (w != nullptr ? w->lp_iterations : seq_probe_iters) += sol.iterations;
    if (sol.status == SolveStatus::kInfeasible) return kInfeasibleScore;
    if (sol.status != SolveStatus::kOptimal) return kNaN;
    return std::max(0.0, sense_sign * sol.objective - node_bound) /
           std::max(frac_moved, 1e-9);
  };

  // Records one probe measurement in the pseudocost history (infeasible and
  // inconclusive probes carry no per-fraction information and are skipped).
  const auto fold_probe = [&](int j, bool up, double measured) {
    if (std::isnan(measured) || measured == kInfeasibleScore) return;
    pc.update(j, up, measured);
    ++pseudocost_updates;
    if (pc_init_histogram != nullptr) pc_init_histogram->observe(measured);
  };

  // Picks the branching variable for a node. Pseudocost product scoring
  // with strong-branching reliability initialization at shallow depth;
  // falls back to the legacy most-fractional rule when configured. Safe to
  // call concurrently with `w` set: probes then run on the worker's own
  // engine and only the pseudocost table / probe budget are shared (both
  // synchronized). Must NOT be called while holding the frontier lock.
  //
  // The probe work splits into three phases so the deterministic epoch loop
  // can hand the probe LPs to the thread pool: (1) pick the probe set in
  // candidate order under the global budget, (2) measure — sequentially on
  // `w`'s (or the solve's) engine, or in parallel across `probe_scratch`
  // when a pool is supplied, (3) fold the measurements into the pseudocost
  // table and score, again in candidate order. Probe LPs neither read the
  // pseudocost table nor each other, so phase 2's engine assignment cannot
  // change any result: the fold/score sequence is byte-identical whether
  // one engine measured or eight.
  const auto select_branch = [&](const Node& node, const LpSolution& relaxed,
                                 double node_bound, WorkerScratch* w,
                                 ThreadPool* probe_pool = nullptr,
                                 std::vector<std::unique_ptr<WorkerScratch>>*
                                     probe_scratch = nullptr) -> int {
    if (options_.branching.rule == BranchingOptions::Rule::kMostFractional) {
      return most_fractional(model, relaxed.values, integrality_tol);
    }
    struct Candidate {
      int var = 0;
      double f = 0.0;     // fractional part
      double dist = 0.0;  // distance to integrality
    };
    std::vector<Candidate> cands;
    for (int j = 0; j < n; ++j) {
      if (!model.variable(j).is_integer) continue;
      const double v = relaxed.values[static_cast<std::size_t>(j)];
      const double f = v - std::floor(v);
      const double dist = std::min(f, 1.0 - f);
      if (dist <= integrality_tol) continue;
      cands.push_back(Candidate{j, f, dist});
    }
    if (cands.empty()) return -1;
    // Probing every unreliable candidate would cost two LPs each; probe
    // only the most fractional few per node, the rest score on estimates.
    std::vector<char> may_probe(cands.size(), 0);
    if (node.depth <= options_.branching.strong_branch_max_depth &&
        probe_budget > 0) {
      std::vector<std::size_t> by_dist(cands.size());
      for (std::size_t k = 0; k < cands.size(); ++k) by_dist[k] = k;
      std::sort(by_dist.begin(), by_dist.end(),
                [&](std::size_t a, std::size_t b) {
                  if (cands[a].dist != cands[b].dist) {
                    return cands[a].dist > cands[b].dist;
                  }
                  return cands[a].var < cands[b].var;
                });
      int allowed = options_.branching.max_probes_per_node;
      for (const std::size_t k : by_dist) {
        if (allowed <= 0) break;
        if (pc.observations(cands[k].var) >= options_.branching.reliability) {
          continue;
        }
        may_probe[k] = 1;
        --allowed;
      }
    }
    // Phase 1: claim budget for this node's probes, in candidate order.
    struct Probe {
      std::size_t k = 0;
      double down = kNaN;
      double up = kNaN;
    };
    std::vector<Probe> probes;
    for (std::size_t k = 0; k < cands.size(); ++k) {
      if (may_probe[k] && probe_budget > 0 && !ctx.deadline().expired() &&
          !ctx.cancelled()) {
        --probe_budget;
        ++strong_branch_probes;
        probes.push_back(Probe{k, kNaN, kNaN});
      }
    }
    // Phase 2: measure both directions of every claimed probe.
    const auto measure = [&](Probe& p, WorkerScratch* engine) {
      const Candidate& cand = cands[p.k];
      p.down = probe_direction(node, relaxed, node_bound, cand.var,
                               /*up=*/false, cand.f, engine);
      p.up = probe_direction(node, relaxed, node_bound, cand.var,
                             /*up=*/true, 1.0 - cand.f, engine);
    };
    if (probe_pool != nullptr && probe_scratch != nullptr &&
        probes.size() > 1) {
      // Chunked so a probe count above the scratch count never lands two
      // concurrent probes on the same engine.
      const std::size_t width = probe_scratch->size();
      for (std::size_t base = 0; base < probes.size(); base += width) {
        const int chunk =
            static_cast<int>(std::min(width, probes.size() - base));
        parallel_for(*probe_pool, chunk, [&](int i) {
          measure(probes[base + static_cast<std::size_t>(i)],
                  (*probe_scratch)[static_cast<std::size_t>(i)].get());
        });
      }
    } else {
      for (Probe& p : probes) measure(p, w);
    }
    // Phase 3: fold measurements and score, in candidate order.
    std::size_t pi = 0;
    int best = -1;
    double best_score = -1.0;
    double best_dist = 0.0;
    for (std::size_t k = 0; k < cands.size(); ++k) {
      const int j = cands[k].var;
      const double f = cands[k].f;
      const double dist = cands[k].dist;
      double down_est = pc.estimate(j, /*up=*/false) * f;
      double up_est = pc.estimate(j, /*up=*/true) * (1.0 - f);
      if (pi < probes.size() && probes[pi].k == k) {
        const double down = probes[pi].down;
        const double up = probes[pi].up;
        ++pi;
        fold_probe(j, /*up=*/false, down);
        fold_probe(j, /*up=*/true, up);
        // A freshly measured value beats any historical average.
        if (!std::isnan(down)) {
          down_est = down == kInfeasibleScore ? down : down * f;
        }
        if (!std::isnan(up)) {
          up_est = up == kInfeasibleScore ? up : up * (1.0 - f);
        }
      }
      const double score =
          std::max(down_est, kScoreEps) * std::max(up_est, kScoreEps);
      if (score > best_score + 1e-12 ||
          (score > best_score - 1e-12 && dist > best_dist)) {
        best_score = score;
        best_dist = dist;
        best = j;
      }
    }
    return best >= 0 ? best
                     : most_fractional(model, relaxed.values, integrality_tol);
  };

  OpenNodes open;
  {
    auto root_node = std::make_shared<Node>();
    root_node->lower = root_lower;
    root_node->upper = root_upper;
    root_node->parent_basis = root.basis;
    root_node->parent_bound = sense_sign * root.objective;
    open.push(std::move(root_node));
  }

  const auto gap_closed = [&]() {
    if (!have_incumbent) return false;
    const double denom = std::max(1.0, std::abs(incumbent));
    return (incumbent - global_bound) / denom <= options_.search.relative_gap;
  };

  // Pushes the down (x_j <= floor(v)) and up (x_j >= ceil(v)) children of a
  // branched node. The caller owns frontier synchronization.
  const auto push_children = [&](const Node& node, const LpSolution& relaxed,
                                 double node_bound, int j, int producer) {
    const double v = relaxed.values[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    for (const bool up : {false, true}) {
      auto child = std::make_shared<Node>();
      child->lower = node.lower;
      child->upper = node.upper;
      if (up) {
        child->lower[static_cast<std::size_t>(j)] = std::ceil(v);
      } else {
        child->upper[static_cast<std::size_t>(j)] = std::floor(v);
      }
      child->parent_basis = relaxed.basis;
      child->parent_bound = node_bound;
      child->depth = node.depth + 1;
      child->branch_var = j;
      child->branch_up = up;
      child->branch_frac = frac;
      child->producer = producer;
      if (child->lower[static_cast<std::size_t>(j)] <=
          child->upper[static_cast<std::size_t>(j)]) {
        open.push(std::move(child));
      }
    }
  };

  // Node LP on a worker's private engine/prep/context, mirroring
  // `solve_node` but tallying into the worker's own counters (folded into
  // the solve totals once workers join — never into `result` directly, so
  // iterations are not double counted).
  const auto solve_node_on = [&](WorkerScratch& ws, const Node& node) {
    LpSolution lp = ws.engine.solve(
        ws.prep, node.lower, node.upper, ws.ctx,
        LpStartBasis(options_.search.warm_start_nodes ? node.parent_basis.get()
                                                      : nullptr,
                     LpStartBasis::Origin::kBoundChange));
    if (lp.warm_started) ++ws.warm_started;
    if (lp.used_dual) ++ws.dual_reopt;
    ws.lp_iterations += lp.iterations;
    ++ws.nodes;
    return lp;
  };

  // Folds every worker's private tallies and stats tree back into the solve
  // once the workers have joined: reopt/iteration totals into the solve
  // counters, per-worker node/steal/incumbent counts under a "parallel"
  // stats child, and each worker context's "simplex" subtree into this
  // solve's branch_and_bound node so parallel and sequential solves report
  // the same stats shape.
  const auto merge_scratches =
      [&](const std::vector<std::unique_ptr<WorkerScratch>>& scratch,
          int threads_used) {
        // Merge the worker stats trees before touching the "parallel" child:
        // merge_from may grow stats.children (adding e.g. "simplex"), which
        // would invalidate any reference held across the calls.
        for (const std::unique_ptr<WorkerScratch>& ws : scratch) {
          stats.merge_from(ws->ctx.stats());
        }
        SolveStats& pstats = stats.child("parallel");
        pstats.add("threads", static_cast<double>(threads_used));
        long long steals_total = 0;
        for (std::size_t w = 0; w < scratch.size(); ++w) {
          const WorkerScratch& ws = *scratch[w];
          warm_started_nodes += ws.warm_started;
          dual_reopt_nodes += ws.dual_reopt;
          result.lp_iterations += static_cast<int>(ws.lp_iterations);
          steals_total += ws.steals;
          SolveStats& wstats = pstats.child("worker" + std::to_string(w));
          wstats.add("nodes", static_cast<double>(ws.nodes));
          wstats.add("steals", static_cast<double>(ws.steals));
          wstats.add("incumbents", static_cast<double>(ws.incumbents));
          wstats.add("lp_iterations", static_cast<double>(ws.lp_iterations));
        }
        pstats.add("steals", static_cast<double>(steals_total));
        if (telemetry::MetricsRegistry* mreg = ctx.metrics();
            mreg != nullptr && steals_total > 0) {
          mreg->counter("etransform_milp_parallel_steals_total",
                        "Frontier nodes expanded by a tree-search worker "
                        "other than their producer")
              .add(static_cast<double>(steals_total));
        }
      };

  bool budget_exhausted = false;
  std::optional<MilpStatus> interrupted;
  // Per-node spans would dominate the trace; batch them so a million-node
  // search stays viewable. Each span covers up to kNodesPerBatchSpan nodes.
  constexpr long long kNodesPerBatchSpan = 256;
  std::optional<telemetry::TraceSpan> batch_span;
  long long next_batch_node = 0;
  const auto refresh_batch_span = [&]() {
    if (telemetry::TraceRecorder* rec = ctx.trace();
        rec != nullptr && result.nodes >= next_batch_node) {
      batch_span.reset();
      batch_span.emplace(rec, "milp", "bnb.node_batch");
      next_batch_node = result.nodes + kNodesPerBatchSpan;
    }
  };
  // Periodic node-count samples for the progress ring: bound/incumbent
  // samples only land on improvements, so a long tail chewing nodes without
  // improving would otherwise look frozen to /progress pollers.
  constexpr long long kNodesPerProgressSample = 64;
  long long next_progress_node = 0;
  const auto publish_node_progress = [&]() {
    if (ctx.progress() != nullptr && result.nodes >= next_progress_node) {
      publish_progress(global_bound);
      next_progress_node = result.nodes + kNodesPerProgressSample;
    }
  };

  const int search_threads = resolve_threads(options_.search.threads);
  if (options_.search.deterministic) {
    // ---- deterministic epoch search ---------------------------------------
    // Fixed dequeue epochs: pop up to `deterministic_epoch` nodes, solve
    // their LPs in parallel (slot k always on scratch k, so counters merge
    // in slot order), then apply the results sequentially in dequeue order
    // on this thread — incumbent updates, pseudocost feedback, branching
    // probes, and child pushes all happen in a thread-count-independent
    // order. The explored tree depends on the epoch width but not on
    // `threads`; only deadline-hit runs stay timing-dependent.
    const int epoch = std::max(1, options_.search.deterministic_epoch);
    std::vector<std::unique_ptr<WorkerScratch>> scratch;
    scratch.reserve(static_cast<std::size_t>(epoch));
    for (int s = 0; s < epoch; ++s) {
      scratch.push_back(std::make_unique<WorkerScratch>(
          *prep->model, options_.lp, sb_lp_options, ctx));
    }
    std::optional<ThreadPool> pool;
    if (search_threads > 1) {
      pool.emplace(search_threads);
      pool->set_trace_recorder(ctx.trace(), ctx.trace_id());
    }
    std::vector<std::shared_ptr<Node>> batch;
    std::vector<LpSolution> batch_sols(static_cast<std::size_t>(epoch));
    while (!open.empty()) {
      refresh_batch_span();
      publish_node_progress();
      const double fresh_bound = open.best_bound();
      if (fresh_bound > global_bound + 1e-12) {
        stats.add("bound_improvements", 1.0);
        record_trace(fresh_bound);
        if (ctx.events.on_bound_improvement) {
          BoundEvent event;
          event.node = result.nodes;
          event.bound = sense_sign * fresh_bound;
          event.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
          ctx.events.on_bound_improvement(event);
        }
      }
      global_bound = fresh_bound;
      if (gap_closed()) break;
      if (result.nodes >= options_.search.max_nodes) {
        budget_exhausted = true;
        break;
      }
      interrupted = interruption();
      if (interrupted) break;

      // Gather one epoch, pruning at pop time exactly like the sequential
      // loop (pruned pops do not count as nodes).
      batch.clear();
      while (!open.empty() && static_cast<int>(batch.size()) < epoch) {
        std::shared_ptr<Node> node = open.pop(/*depth_first=*/!have_incumbent);
        if (have_incumbent && node->parent_bound >= incumbent - 1e-12) {
          continue;  // pruned by bound
        }
        batch.push_back(std::move(node));
      }
      if (batch.empty()) continue;

      // Phase A: the epoch's node LPs, embarrassingly parallel.
      const auto solve_slot = [&](int s) {
        batch_sols[static_cast<std::size_t>(s)] = solve_node_on(
            *scratch[static_cast<std::size_t>(s)],
            *batch[static_cast<std::size_t>(s)]);
      };
      if (pool.has_value()) {
        parallel_for(*pool, static_cast<int>(batch.size()), solve_slot);
      } else {
        for (int s = 0; s < static_cast<int>(batch.size()); ++s) {
          solve_slot(s);
        }
      }

      // Phase B: apply in dequeue order.
      for (std::size_t s = 0; s < batch.size() && !interrupted; ++s) {
        const Node& node = *batch[s];
        const LpSolution& relaxed = batch_sols[s];
        ++result.nodes;
        if (ctx.events.on_node) {
          NodeEvent event;
          event.node = result.nodes;
          event.depth = node.depth;
          event.relaxation = relaxed.status == SolveStatus::kOptimal
                                 ? relaxed.objective
                                 : kNaN;
          event.best_bound = sense_sign * global_bound;
          event.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
          event.open_nodes =
              open.size() + static_cast<int>(batch.size() - 1 - s);
          ctx.events.on_node(event);
        }
        if (relaxed.status == SolveStatus::kInfeasible) continue;
        if (relaxed.status == SolveStatus::kIterationLimit) {
          budget_exhausted = true;
          continue;
        }
        if (relaxed.status == SolveStatus::kTimeLimit ||
            relaxed.status == SolveStatus::kCancelled) {
          interrupted = milp_status_of_lp(relaxed.status);
          break;
        }
        if (relaxed.status == SolveStatus::kUnbounded ||
            relaxed.status == SolveStatus::kNumericalError) {
          // Numerically failed nodes are dropped, but counted: the daemon's
          // flight recorder flags solves whose tree shed nodes this way.
          if (relaxed.status == SolveStatus::kNumericalError) {
            stats.add("numerical_nodes", 1.0);
          }
          continue;
        }
        const double node_bound = sense_sign * relaxed.objective;
        if (node.branch_var >= 0) {
          const double frac_moved =
              node.branch_up ? 1.0 - node.branch_frac : node.branch_frac;
          if (frac_moved > 1e-9) {
            pc.update(node.branch_var, node.branch_up,
                      (node_bound - node.parent_bound) / frac_moved);
            ++pseudocost_updates;
          }
        }
        if (have_incumbent && node_bound >= incumbent - 1e-12) continue;
        if (all_integral(model, relaxed.values, integrality_tol)) {
          try_incumbent(relaxed.values, relaxed.objective);
          continue;
        }
        // Strong-branch probes are the bulk of this sequential apply phase;
        // hand them to the pool (the epoch's node LPs are already done, so
        // the workers are idle and the scratch engines free).
        const int j = select_branch(node, relaxed, node_bound, nullptr,
                                    pool.has_value() ? &*pool : nullptr,
                                    &scratch);
        if (j < 0) continue;  // integral within tolerance after probing
        push_children(node, relaxed, node_bound, j, /*producer=*/-1);
      }
    }
    merge_scratches(scratch, search_threads);
  } else if (search_threads > 1) {
    // ---- asynchronous parallel search -------------------------------------
    // N workers share the best-first frontier under one mutex; node LPs and
    // strong-branching probes run unlocked on per-worker engines. A worker
    // expanding a node parks its bound in `inflight`, so the global bound
    // never overshoots nodes that left the frontier but whose children have
    // not been pushed yet. Incumbents additionally publish through the
    // lock-free `incumbent_pub` so peers prune without taking the mutex.
    std::vector<std::unique_ptr<WorkerScratch>> scratch;
    scratch.reserve(static_cast<std::size_t>(search_threads));
    for (int w = 0; w < search_threads; ++w) {
      scratch.push_back(std::make_unique<WorkerScratch>(
          *prep->model, options_.lp, sb_lp_options, ctx));
    }
    std::mutex mu;
    std::condition_variable cv;
    int active = 0;     // workers currently expanding a node
    bool stop = false;  // a worker hit a terminal condition
    std::exception_ptr failure;
    std::vector<double> inflight(static_cast<std::size_t>(search_threads),
                                 std::numeric_limits<double>::infinity());

    const auto worker_loop = [&](int w) {
      WorkerScratch& ws = *scratch[static_cast<std::size_t>(w)];
      std::unique_lock<std::mutex> lock(mu);
      for (;;) {
        cv.wait(lock, [&] { return stop || !open.empty() || active == 0; });
        if (stop) return;
        if (open.empty()) {
          if (active == 0) return;  // tree exhausted
          continue;                 // spurious wakeup while peers expand
        }
        // Loop-top housekeeping, mirroring the sequential loop: whichever
        // worker holds the lock refreshes the global bound (including the
        // bounds of nodes peers are mid-expansion on) and checks the
        // termination conditions on behalf of the whole search.
        double fresh_bound = open.best_bound();
        for (const double b : inflight) {
          fresh_bound = std::min(fresh_bound, b);
        }
        if (fresh_bound > global_bound + 1e-12) {
          stats.add("bound_improvements", 1.0);
          record_trace(fresh_bound);
          if (ctx.events.on_bound_improvement) {
            BoundEvent event;
            event.node = result.nodes;
            event.bound = sense_sign * fresh_bound;
            event.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
            ctx.events.on_bound_improvement(event);
          }
        }
        global_bound = fresh_bound;
        publish_node_progress();  // under the frontier lock: serialized
        // Same priority order as the sequential loop: a closed gap beats the
        // node budget beats deadline/cancellation.
        if (gap_closed()) {
          stop = true;
          cv.notify_all();
          return;
        }
        if (result.nodes >= options_.search.max_nodes) {
          budget_exhausted = true;
          stop = true;
          cv.notify_all();
          return;
        }
        if (const std::optional<MilpStatus> hit = interruption()) {
          interrupted = hit;
          stop = true;
          cv.notify_all();
          return;
        }
        std::shared_ptr<Node> node = open.pop(/*depth_first=*/!have_incumbent);
        if (have_incumbent && node->parent_bound >= incumbent - 1e-12) {
          continue;  // pruned by bound
        }
        if (node->producer >= 0 && node->producer != w) ++ws.steals;
        ++active;
        inflight[static_cast<std::size_t>(w)] = node->parent_bound;
        lock.unlock();

        // A peer may have published a better incumbent while this node sat
        // in the frontier: one lock-free check before paying for the LP (a
        // late prune is uncounted, like the pop-time one).
        const double pub = incumbent_pub.load(std::memory_order_relaxed);
        LpSolution relaxed;
        const bool expanded = node->parent_bound < pub - 1e-12;
        if (expanded) relaxed = solve_node_on(ws, *node);

        lock.lock();
        if (expanded) {
          ++result.nodes;
          if (ctx.events.on_node) {
            NodeEvent event;
            event.node = result.nodes;
            event.depth = node->depth;
            event.relaxation = relaxed.status == SolveStatus::kOptimal
                                   ? relaxed.objective
                                   : kNaN;
            event.best_bound = sense_sign * global_bound;
            event.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
            event.open_nodes = open.size();
            ctx.events.on_node(event);
          }
          bool branch = false;
          double node_bound = 0.0;
          if (relaxed.status == SolveStatus::kNumericalError) {
            // Dropped like the sequential loop; counted under the lock.
            stats.add("numerical_nodes", 1.0);
          } else if (relaxed.status == SolveStatus::kIterationLimit) {
            budget_exhausted = true;
          } else if (relaxed.status == SolveStatus::kTimeLimit ||
                     relaxed.status == SolveStatus::kCancelled) {
            interrupted = milp_status_of_lp(relaxed.status);
            stop = true;
          } else if (relaxed.status == SolveStatus::kOptimal) {
            node_bound = sense_sign * relaxed.objective;
            if (node->branch_var >= 0) {
              const double frac_moved = node->branch_up
                                            ? 1.0 - node->branch_frac
                                            : node->branch_frac;
              if (frac_moved > 1e-9) {
                pc.update(node->branch_var, node->branch_up,
                          (node_bound - node->parent_bound) / frac_moved);
                ++pseudocost_updates;
              }
            }
            if (have_incumbent && node_bound >= incumbent - 1e-12) {
              // dominated by the incumbent
            } else if (all_integral(model, relaxed.values, integrality_tol)) {
              if (try_incumbent(relaxed.values, relaxed.objective)) {
                ++ws.incumbents;
              }
            } else {
              branch = true;
            }
          }
          // Infeasible / unbounded / numerically failed nodes drop, exactly
          // like the sequential loop.
          if (branch && !stop) {
            // Branch selection probes child LPs: drop the lock so peers keep
            // popping while this worker probes on its own engine.
            lock.unlock();
            const int j = select_branch(*node, relaxed, node_bound, &ws);
            lock.lock();
            if (j >= 0) push_children(*node, relaxed, node_bound, j, w);
          }
        }
        inflight[static_cast<std::size_t>(w)] =
            std::numeric_limits<double>::infinity();
        --active;
        cv.notify_all();
      }
    };

    {
      ThreadPool pool(search_threads);
      pool.set_trace_recorder(ctx.trace(), ctx.trace_id());
      for (int w = 0; w < search_threads; ++w) {
        pool.submit([&, w] {
          // ThreadPool tasks must not throw; park the first failure and
          // stop the search (rethrown after the join below).
          try {
            worker_loop(w);
          } catch (...) {
            const std::lock_guard<std::mutex> guard(mu);
            if (!failure) failure = std::current_exception();
            stop = true;
            cv.notify_all();
          }
        });
      }
      pool.wait_idle();
    }
    merge_scratches(scratch, search_threads);
    if (failure) std::rethrow_exception(failure);
  } else {
    // ---- classic sequential search ----------------------------------------
    while (!open.empty()) {
      refresh_batch_span();
      publish_node_progress();
      // The best open node defines the global bound.
      const double fresh_bound = open.best_bound();
      if (fresh_bound > global_bound + 1e-12) {
        stats.add("bound_improvements", 1.0);
        record_trace(fresh_bound);
        if (ctx.events.on_bound_improvement) {
          BoundEvent event;
          event.node = result.nodes;
          event.bound = sense_sign * fresh_bound;
          event.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
          ctx.events.on_bound_improvement(event);
        }
      }
      global_bound = fresh_bound;
      if (gap_closed()) break;
      if (result.nodes >= options_.search.max_nodes) {
        budget_exhausted = true;
        break;
      }
      interrupted = interruption();
      if (interrupted) break;
      const std::shared_ptr<Node> node =
          open.pop(/*depth_first=*/!have_incumbent);
      if (have_incumbent && node->parent_bound >= incumbent - 1e-12) {
        continue;  // pruned by bound
      }

      const LpSolution relaxed =
          solve_node(node->lower, node->upper, node->parent_basis.get());
      result.lp_iterations += relaxed.iterations;
      ++result.nodes;
      if (ctx.events.on_node) {
        NodeEvent event;
        event.node = result.nodes;
        event.depth = node->depth;
        event.relaxation = relaxed.status == SolveStatus::kOptimal
                               ? relaxed.objective
                               : kNaN;
        event.best_bound = sense_sign * global_bound;
        event.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
        event.open_nodes = open.size();
        ctx.events.on_node(event);
      }
      if (relaxed.status == SolveStatus::kInfeasible) continue;
      if (relaxed.status == SolveStatus::kIterationLimit) {
        budget_exhausted = true;
        continue;
      }
      if (relaxed.status == SolveStatus::kTimeLimit ||
          relaxed.status == SolveStatus::kCancelled) {
        // The deadline fired inside this node's LP; its bound is unusable,
        // so drop the node and unwind with the partial tree.
        interrupted = milp_status_of_lp(relaxed.status);
        break;
      }
      if (relaxed.status == SolveStatus::kUnbounded ||
          relaxed.status == SolveStatus::kNumericalError) {
        // A bounded-root MILP node cannot become unbounded by tightening
        // bounds, and a numerically failed node has no usable bound; treat
        // either defensively as a failed node (counted, for the daemon's
        // numerical-degradation anomaly flag).
        if (relaxed.status == SolveStatus::kNumericalError) {
          stats.add("numerical_nodes", 1.0);
        }
        continue;
      }
      const double node_bound = sense_sign * relaxed.objective;
      // This node's LP value is the branching outcome its parent predicted:
      // feed the realized degradation back into the pseudocosts.
      if (node->branch_var >= 0) {
        const double frac_moved =
            node->branch_up ? 1.0 - node->branch_frac : node->branch_frac;
        if (frac_moved > 1e-9) {
          pc.update(node->branch_var, node->branch_up,
                    (node_bound - node->parent_bound) / frac_moved);
          ++pseudocost_updates;
        }
      }
      if (have_incumbent && node_bound >= incumbent - 1e-12) continue;

      if (all_integral(model, relaxed.values, integrality_tol)) {
        try_incumbent(relaxed.values, relaxed.objective);
        continue;
      }

      const int j = select_branch(*node, relaxed, node_bound, nullptr);
      if (j < 0) continue;  // integral within tolerance after probing
      push_children(*node, relaxed, node_bound, j, /*producer=*/-1);
    }
  }

  batch_span.reset();

  if (open.empty() && !budget_exhausted && !interrupted) {
    // Exhausted the tree: the incumbent (if any) is optimal.
    global_bound = have_incumbent ? incumbent : global_bound;
  }

  if (interrupted) {
    // Deadline or cancellation: report exactly that, with the incumbent (if
    // any) and the best proven bound so far as valid partial results.
    result.status = *interrupted;
    if (have_incumbent) {
      result.objective = sense_sign * incumbent;
      result.values = std::move(incumbent_values);
    }
  } else if (have_incumbent) {
    result.status = (!budget_exhausted && (open.empty() || gap_closed()))
                        ? MilpStatus::kOptimal
                        : MilpStatus::kFeasible;
    result.objective = sense_sign * incumbent;
    result.values = std::move(incumbent_values);
  } else {
    result.status = budget_exhausted ? MilpStatus::kNoSolutionFound
                                     : MilpStatus::kInfeasible;
  }
  result.best_bound = sense_sign * std::min(global_bound,
                                            have_incumbent ? incumbent
                                                           : global_bound);
  result.lp_iterations += static_cast<int>(seq_probe_iters);
  stats.add("nodes", result.nodes);
  stamp_reopt_counters();
  const long long probes = strong_branch_probes.load();
  stats.add("strong_branch_probes", static_cast<double>(probes));
  stats.add("pseudocost_updates",
            static_cast<double>(pseudocost_updates.load()));
  if (telemetry::MetricsRegistry* mreg = ctx.metrics();
      mreg != nullptr && probes > 0) {
    mreg->counter("etransform_milp_strong_branch_probes_total",
                  "Strong-branching probes (two child LPs each)")
        .add(static_cast<double>(probes));
  }
  record_trace(global_bound);
  return result;
}

}  // namespace etransform::milp
