#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace etransform::milp {

namespace {

using lp::LpEngine;
using lp::LpSolution;
using lp::LpStartBasis;
using lp::Model;
using lp::SolveStatus;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Incumbent/bound trace entries kept per solve. Bounds memory on
/// pathological trees where the dual bound moves at almost every node.
constexpr std::size_t kMaxTracePoints = 4096;

/// Pseudocost estimates are floored at this so a zero-degradation direction
/// never zeroes out the product score.
constexpr double kScoreEps = 1e-6;

/// Scoring value for a branching direction a strong-branching probe proved
/// infeasible (fixing the variable prunes the subtree outright).
constexpr double kInfeasibleScore = 1e8;

/// One open node: a set of tightened variable bounds plus the parent's
/// relaxation value used for best-first ordering and the parent's optimal
/// basis used to warm-start this node's LP (shared, not copied, between
/// siblings). `branch_*` records how this node was created so its LP value
/// can feed the branching variable's pseudocost.
struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  std::shared_ptr<const lp::BasisSnapshot> parent_basis;
  double parent_bound = 0.0;
  int depth = 0;
  int branch_var = -1;
  bool branch_up = false;
  double branch_frac = 0.0;  // parent fractional part of branch_var
};

/// Open-node pool with hybrid selection: depth-first while no incumbent
/// exists (plunging to a first integral leaf quickly), best-bound once one
/// does (tightening the global bound for pruning and gap termination).
class OpenNodes {
 public:
  void push(std::shared_ptr<Node> node) { nodes_.push_back(std::move(node)); }

  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }

  /// Smallest parent bound among open nodes (the global bound).
  [[nodiscard]] double best_bound() const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& node : nodes_) {
      best = std::min(best, node->parent_bound);
    }
    return best;
  }

  std::shared_ptr<Node> pop(bool depth_first) {
    std::size_t pick = nodes_.size() - 1;  // newest (deepest) by default
    if (!depth_first) {
      for (std::size_t k = 0; k < nodes_.size(); ++k) {
        if (nodes_[k]->parent_bound < nodes_[pick]->parent_bound) pick = k;
      }
    }
    std::shared_ptr<Node> node = std::move(nodes_[pick]);
    nodes_[pick] = std::move(nodes_.back());
    nodes_.pop_back();
    return node;
  }

 private:
  std::vector<std::shared_ptr<Node>> nodes_;
};

/// Index of the most fractional integer variable, or -1 if all integral.
int most_fractional(const Model& model, const std::vector<double>& values,
                    double tol) {
  int best = -1;
  double best_score = tol;  // distance from the nearest integer, in (0, 0.5]
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    const double v = values[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    const double score = std::min(frac, 1.0 - frac);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

bool all_integral(const Model& model, const std::vector<double>& values,
                  double tol) {
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    const double v = values[static_cast<std::size_t>(j)];
    if (std::abs(v - std::round(v)) > tol) return false;
  }
  return true;
}

/// Snaps near-integral values exactly onto integers.
void snap_integers(const Model& model, std::vector<double>& values,
                   double tol) {
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double& v = values[static_cast<std::size_t>(j)];
    const double r = std::round(v);
    if (std::abs(v - r) <= tol) v = r;
  }
}

/// Per-variable branching history: average objective degradation per unit of
/// fraction, per direction. Variables without observations inherit the
/// global average (a freshly measured strong-branch value beats both; see
/// select_branch in solve_impl).
class Pseudocosts {
 public:
  explicit Pseudocosts(int num_vars)
      : down_sum_(static_cast<std::size_t>(num_vars), 0.0),
        up_sum_(static_cast<std::size_t>(num_vars), 0.0),
        down_n_(static_cast<std::size_t>(num_vars), 0),
        up_n_(static_cast<std::size_t>(num_vars), 0) {}

  void update(int j, bool up, double per_frac) {
    per_frac = std::max(per_frac, 0.0);
    if (up) {
      up_sum_[static_cast<std::size_t>(j)] += per_frac;
      ++up_n_[static_cast<std::size_t>(j)];
      global_up_sum_ += per_frac;
      ++global_up_n_;
    } else {
      down_sum_[static_cast<std::size_t>(j)] += per_frac;
      ++down_n_[static_cast<std::size_t>(j)];
      global_down_sum_ += per_frac;
      ++global_down_n_;
    }
  }

  [[nodiscard]] double estimate(int j, bool up) const {
    const int n = up ? up_n_[static_cast<std::size_t>(j)]
                     : down_n_[static_cast<std::size_t>(j)];
    if (n > 0) {
      const double sum = up ? up_sum_[static_cast<std::size_t>(j)]
                            : down_sum_[static_cast<std::size_t>(j)];
      return sum / n;
    }
    const long long gn = up ? global_up_n_ : global_down_n_;
    if (gn > 0) return (up ? global_up_sum_ : global_down_sum_) / gn;
    return 1.0;
  }

  /// Observations in the weaker direction — the reliability measure.
  [[nodiscard]] int observations(int j) const {
    return std::min(down_n_[static_cast<std::size_t>(j)],
                    up_n_[static_cast<std::size_t>(j)]);
  }

 private:
  std::vector<double> down_sum_;
  std::vector<double> up_sum_;
  std::vector<int> down_n_;
  std::vector<int> up_n_;
  double global_down_sum_ = 0.0;
  double global_up_sum_ = 0.0;
  long long global_down_n_ = 0;
  long long global_up_n_ = 0;
};

}  // namespace

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnbounded: return "unbounded";
    case MilpStatus::kNoSolutionFound: return "no_solution_found";
    case MilpStatus::kTimeLimit: return "time_limit";
    case MilpStatus::kCancelled: return "cancelled";
  }
  return "?";
}

BranchAndBoundSolver::BranchAndBoundSolver(SolverOptions options)
    : options_(options) {}

void BranchAndBoundSolver::add_cut_generator(
    std::shared_ptr<CutGenerator> generator) {
  generators_.push_back(std::move(generator));
}

MilpSolution BranchAndBoundSolver::solve(
    const Model& model, SolveContext& ctx,
    const lp::BasisSnapshot* root_warm) const {
  model.validate();
  // time_limit_ms tightens — never loosens — the caller's deadline.
  const DeadlineGuard guard(
      ctx,
      options_.search.time_limit_ms > 0
          ? Deadline::after_ms(static_cast<double>(options_.search.time_limit_ms))
          : Deadline::unlimited());
  SolveScope scope(ctx, "branch_and_bound");
  MilpSolution result = solve_impl(model, ctx, scope.stats(), root_warm);
  scope.close();
  result.stats = scope.stats();
  return result;
}

MilpSolution BranchAndBoundSolver::solve_impl(
    const Model& model, SolveContext& ctx, SolveStats& stats,
    const lp::BasisSnapshot* root_warm) const {
  // Cancellation beats the deadline when both apply.
  const auto interruption = [&ctx]() -> std::optional<MilpStatus> {
    if (ctx.cancelled()) return MilpStatus::kCancelled;
    if (ctx.deadline().expired()) return MilpStatus::kTimeLimit;
    return std::nullopt;
  };
  const auto milp_status_of_lp = [](SolveStatus status) {
    return status == SolveStatus::kCancelled ? MilpStatus::kCancelled
                                             : MilpStatus::kTimeLimit;
  };

  const double sense_sign = model.sense() == lp::Sense::kMinimize ? 1.0 : -1.0;
  const double integrality_tol = options_.search.integrality_tol;
  // Internally everything is a minimization of sense_sign * objective.
  const LpEngine lp_solver(options_.lp);
  // The standard form is bounds-independent: build it once and share it
  // across the root, the dive, and every node (only bounds change per
  // node). The root cutting loop may rebind `prep` to a strengthened form
  // over `cut_model` (base rows + accepted cut rows).
  lp::Model cut_model;
  auto prep = std::make_unique<lp::PreparedLp>(model);
  long long warm_started_nodes = 0;
  long long dual_reopt_nodes = 0;
  // Node re-solves differ from the basis-producing solve only in variable
  // bounds, so they restart with Origin::kBoundChange — the contract that
  // lets SolveMode::kAuto reoptimize with the dual simplex.
  const auto solve_node = [&](const std::vector<double>& lower,
                              const std::vector<double>& upper,
                              const lp::BasisSnapshot* warm) {
    LpSolution lp = lp_solver.solve(
        *prep, lower, upper, ctx,
        LpStartBasis(options_.search.warm_start_nodes ? warm : nullptr,
                     LpStartBasis::Origin::kBoundChange));
    if (lp.warm_started) ++warm_started_nodes;
    if (lp.used_dual) ++dual_reopt_nodes;
    return lp;
  };
  // Every return path stamps the reoptimization tallies exactly once —
  // cut rounds can run dual re-solves even when the strengthened root goes
  // integral and the tree is never explored.
  const auto stamp_reopt_counters = [&]() {
    stats.add("warm_started_nodes", static_cast<double>(warm_started_nodes));
    stats.add("dual_reopt_nodes", static_cast<double>(dual_reopt_nodes));
  };

  MilpSolution result;
  const int n = model.num_variables();
  std::vector<double> root_lower(static_cast<std::size_t>(n));
  std::vector<double> root_upper(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const auto& v = model.variable(j);
    // Integer bounds can be pre-rounded inward.
    root_lower[static_cast<std::size_t>(j)] =
        v.is_integer && std::isfinite(v.lower) ? std::ceil(v.lower - 1e-9)
                                               : v.lower;
    root_upper[static_cast<std::size_t>(j)] =
        v.is_integer && std::isfinite(v.upper) ? std::floor(v.upper + 1e-9)
                                               : v.upper;
  }

  bool have_incumbent = false;
  double incumbent = 0.0;  // in internal (minimization) orientation
  std::vector<double> incumbent_values;
  double global_bound = -lp::kInfinity;

  const auto record_trace = [&](double bound_internal) {
    if (stats.trace.size() >= kMaxTracePoints) return;
    TracePoint point;
    point.time_ms = ctx.elapsed_ms();
    point.node = result.nodes;
    point.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
    point.bound = sense_sign * bound_internal;
    stats.trace.push_back(point);
  };

  const auto try_incumbent = [&](const std::vector<double>& values,
                                 double objective_model_sense) {
    const double internal = sense_sign * objective_model_sense;
    if (!have_incumbent || internal < incumbent - 1e-12) {
      have_incumbent = true;
      incumbent = internal;
      incumbent_values = values;
      snap_integers(model, incumbent_values, integrality_tol);
      stats.add("incumbents", 1.0);
      record_trace(global_bound);
      if (ctx.events.on_incumbent) {
        IncumbentEvent event;
        event.node = result.nodes;
        event.objective = objective_model_sense;
        event.time_ms = ctx.elapsed_ms();
        ctx.events.on_incumbent(event);
      }
      ET_LOG(kDebug) << "milp: new incumbent " << objective_model_sense;
    }
  };

  // Diving heuristic: at every step fix *all* nearly-integral integer
  // variables plus the single most fractional one, then re-solve. Fixing in
  // bulk keeps dives to a handful of LP solves even on thousands of
  // binaries; if a bulk fix turns infeasible the dive simply aborts and
  // branch-and-bound proceeds.
  const auto dive = [&](std::vector<double> lower, std::vector<double> upper,
                        const LpSolution& start) {
    SolveScope dive_scope(ctx, "root_dive");
    LpSolution current = start;
    for (int depth = 0; depth < 64; ++depth) {
      if (all_integral(model, current.values, integrality_tol)) {
        try_incumbent(current.values, current.objective);
        return;
      }
      for (int j = 0; j < n; ++j) {
        if (!model.variable(j).is_integer) continue;
        const double v = current.values[static_cast<std::size_t>(j)];
        const double rounded = std::round(v);
        if (std::abs(v - rounded) <= 0.05) {
          lower[static_cast<std::size_t>(j)] = rounded;
          upper[static_cast<std::size_t>(j)] = rounded;
        }
      }
      const int j = most_fractional(model, current.values, integrality_tol);
      if (j < 0) return;
      const double fixed =
          std::round(current.values[static_cast<std::size_t>(j)]);
      lower[static_cast<std::size_t>(j)] = fixed;
      upper[static_cast<std::size_t>(j)] = fixed;
      current = solve_node(lower, upper, current.basis.get());
      result.lp_iterations += current.iterations;
      if (current.status != SolveStatus::kOptimal) return;
      if (have_incumbent && sense_sign * current.objective >= incumbent) {
        return;
      }
    }
  };

  // Root relaxation. `root_warm` (a clean-root basis from a previous solve
  // of a modified variant of this model — the iterative admin path) rides
  // the same bound-change restart contract as node re-solves.
  LpSolution root;
  {
    SolveScope root_scope(ctx, "root_lp");
    root = solve_node(root_lower, root_upper, root_warm);
  }
  result.lp_iterations += root.iterations;
  ++result.nodes;
  switch (root.status) {
    case SolveStatus::kInfeasible:
      result.status = MilpStatus::kInfeasible;
      return result;
    case SolveStatus::kUnbounded:
      result.status = MilpStatus::kUnbounded;
      return result;
    case SolveStatus::kIterationLimit:
    case SolveStatus::kNumericalError:
      result.status = MilpStatus::kNoSolutionFound;
      return result;
    case SolveStatus::kTimeLimit:
    case SolveStatus::kCancelled:
      // Interrupted before any bound or incumbent existed.
      result.status = milp_status_of_lp(root.status);
      stats.add("nodes", result.nodes);
      return result;
    case SolveStatus::kOptimal:
      break;
  }
  // The clean-root basis (over the unmodified model's standard form) is
  // what a future replan of a modified variant can restart from; the
  // cut-strengthened basis below has a different shape.
  result.root_basis = root.basis;
  global_bound = sense_sign * root.objective;
  record_trace(global_bound);
  if (ctx.events.on_node) {
    NodeEvent event;
    event.node = result.nodes;
    event.depth = 0;
    event.relaxation = root.objective;
    event.best_bound = sense_sign * global_bound;
    event.incumbent = kNaN;
    event.open_nodes = 0;
    ctx.events.on_node(event);
  }

  // ---- root cutting loop (cut-and-branch) --------------------------------
  // Cuts are separated only here, under the original bounds, so every
  // accepted row is valid for the whole tree. Each round: separate ->
  // purge aged cuts -> rebuild the standard form over base + pool ->
  // extend the previous basis via lp::extend_basis (new cut slacks enter
  // basic, leaving the old duals intact) -> re-solve with
  // Origin::kRowsAdded, so SolveMode::kAuto prices the violated cut rows
  // out with the dual simplex instead of a composite phase-1 repair.
  if (options_.cuts.enable && model.has_integer_variables()) {
    SolveScope cuts_scope(ctx, "cuts");
    SolveStats& cstats = cuts_scope.stats();
    std::vector<std::shared_ptr<CutGenerator>> generators = generators_;
    if (generators.empty()) {
      generators = default_cut_generators(options_.cuts);
    }

    CutPool pool;
    std::vector<long long> applied_ids;  // pool id per cut row in `prep`
    const int base_rows = prep->num_rows();
    LpSolution current = root;
    bool cuts_failed = false;
    std::optional<MilpStatus> cut_interrupt;

    const auto rebuild_and_resolve = [&]() -> bool {
      std::vector<int> old_row_of_new;
      old_row_of_new.reserve(static_cast<std::size_t>(base_rows) +
                             static_cast<std::size_t>(pool.size()));
      for (int r = 0; r < base_rows; ++r) old_row_of_new.push_back(r);
      std::vector<long long> new_ids;
      new_ids.reserve(static_cast<std::size_t>(pool.size()));
      lp::Model next = model;  // base rows keep their kept-row indices
      for (const Cut& cut : pool.cuts()) {
        next.add_constraint(cut.name, cut.terms, cut.relation, cut.rhs);
        int old_index = -1;
        for (std::size_t k = 0; k < applied_ids.size(); ++k) {
          if (applied_ids[k] == cut.id) {
            old_index = base_rows + static_cast<int>(k);
            break;
          }
        }
        old_row_of_new.push_back(old_index);
        new_ids.push_back(cut.id);
      }
      cut_model = std::move(next);
      auto next_prep = std::make_unique<lp::PreparedLp>(cut_model);
      const lp::BasisSnapshot warm =
          lp::extend_basis(*current.basis, prep->num_vars, old_row_of_new,
                           next_prep->num_rows(), next_prep->num_columns());
      prep = std::move(next_prep);
      applied_ids = std::move(new_ids);
      LpSolution next_sol = lp_solver.solve(
          *prep, root_lower, root_upper, ctx,
          LpStartBasis(&warm, LpStartBasis::Origin::kRowsAdded));
      result.lp_iterations += next_sol.iterations;
      if (next_sol.used_dual) ++dual_reopt_nodes;
      current = std::move(next_sol);
      return current.status == SolveStatus::kOptimal;
    };

    int rounds = 0;
    double round_obj = sense_sign * current.objective;
    int stalled_rounds = 0;
    if (!all_integral(model, current.values, integrality_tol)) {
      while (rounds < options_.cuts.max_rounds) {
        if (auto stop = interruption()) {
          cut_interrupt = stop;
          break;
        }
        const telemetry::TraceSpan round_span(ctx.trace(), "milp",
                                              "cuts.round");
        SeparationContext sctx;
        sctx.model = prep->model;
        sctx.prep = prep.get();
        sctx.lower = &root_lower;
        sctx.upper = &root_upper;
        sctx.options = options_.cuts;
        sctx.integrality_tol = integrality_tol;
        int fresh = 0;
        for (const auto& generator : generators) {
          const long long before = pool.total_generated();
          fresh += generator->separate(sctx, current, pool);
          cstats.add(std::string(generator->name()) + "_cuts",
                     static_cast<double>(pool.total_generated() - before));
        }
        // A dry round still counts: "rounds" reports separation attempts,
        // which is what the stats validator keys on.
        ++rounds;
        if (fresh == 0) break;
        pool.purge(options_.cuts.max_inactive_rounds);
        if (!rebuild_and_resolve()) {
          cuts_failed = true;
          break;
        }
        pool.record_activity(current.values, 1e-7);
        if (all_integral(model, current.values, integrality_tol)) break;
        // Tailing off: separation that no longer moves the bound just piles
        // rows onto every node LP — stop after two flat rounds.
        const double obj = sense_sign * current.objective;
        const double gain = (obj - round_obj) / std::max(1.0, std::abs(obj));
        stalled_rounds = gain < options_.cuts.tailoff ? stalled_rounds + 1 : 0;
        round_obj = obj;
        if (stalled_rounds >= 2) break;
      }
      // Final aging sweep: rows that went slack in the last rounds leave
      // before the tree is explored (they would only slow node LPs).
      if (!cuts_failed && !cut_interrupt &&
          pool.purge(options_.cuts.max_inactive_rounds) > 0) {
        if (!rebuild_and_resolve()) cuts_failed = true;
      }
    }

    if (cuts_failed) {
      // Defensive: a valid cut system cannot make the root infeasible, but
      // an interrupted or numerically failed re-solve must not poison the
      // tree. Drop every cut and restore the clean root relaxation.
      const SolveStatus failed_status = current.status;
      ET_LOG(kWarning) << "milp: cut loop LP ended ("
                       << lp::to_string(failed_status)
                       << "); discarding " << pool.size() << " cuts";
      applied_ids.clear();
      prep = std::make_unique<lp::PreparedLp>(model);
      current = lp_solver.solve(
          *prep, root_lower, root_upper, ctx,
          LpStartBasis(root.basis.get(), LpStartBasis::Origin::kBoundChange));
      result.lp_iterations += current.iterations;
      if (failed_status == SolveStatus::kTimeLimit ||
          failed_status == SolveStatus::kCancelled) {
        cut_interrupt = milp_status_of_lp(failed_status);
      }
    }

    result.cuts.rounds = rounds;
    result.cuts.generated = pool.total_generated();
    result.cuts.applied = cuts_failed ? 0 : pool.size();
    result.cuts.purged = pool.total_purged();
    cstats.add("rounds", static_cast<double>(result.cuts.rounds));
    cstats.add("generated", static_cast<double>(result.cuts.generated));
    cstats.add("applied", static_cast<double>(result.cuts.applied));
    cstats.add("purged", static_cast<double>(result.cuts.purged));
    if (telemetry::MetricsRegistry* mreg = ctx.metrics()) {
      mreg->counter("etransform_milp_cut_rounds_total",
                    "Root cut separation rounds")
          .add(static_cast<double>(result.cuts.rounds));
      mreg->counter("etransform_milp_cuts_generated_total",
                    "Cuts accepted into the pool")
          .add(static_cast<double>(result.cuts.generated));
      mreg->counter("etransform_milp_cuts_applied_total",
                    "Cut rows in the final root relaxation")
          .add(static_cast<double>(result.cuts.applied));
      mreg->counter("etransform_milp_cuts_purged_total",
                    "Cuts aged out by the activity policy")
          .add(static_cast<double>(result.cuts.purged));
    }

    if (current.status == SolveStatus::kOptimal) {
      // Adopt the strengthened root; cuts only tighten, but guard against
      // numerical dips so the proven bound never regresses.
      root = std::move(current);
      if (sense_sign * root.objective > global_bound) {
        global_bound = sense_sign * root.objective;
        record_trace(global_bound);
      }
    } else if (cut_interrupt) {
      result.status = *cut_interrupt;
      result.best_bound = sense_sign * global_bound;
      stats.add("nodes", result.nodes);
      stamp_reopt_counters();
      return result;
    } else {
      // Clean-root restore failed numerically: no usable relaxation.
      result.status = MilpStatus::kNoSolutionFound;
      result.best_bound = sense_sign * global_bound;
      stats.add("nodes", result.nodes);
      stamp_reopt_counters();
      return result;
    }
    if (cut_interrupt) {
      // Interrupted mid-loop but the (possibly strengthened) root is
      // optimal: unwind with the valid bound.
      result.status = *cut_interrupt;
      result.best_bound = sense_sign * global_bound;
      stats.add("nodes", result.nodes);
      stamp_reopt_counters();
      return result;
    }
  }

  if (all_integral(model, root.values, integrality_tol)) {
    try_incumbent(root.values, root.objective);
    result.status = MilpStatus::kOptimal;
    result.objective = sense_sign * incumbent;
    result.best_bound = sense_sign * global_bound;
    result.values = std::move(incumbent_values);
    stats.add("nodes", result.nodes);
    stamp_reopt_counters();
    return result;
  }
  if (options_.search.root_dive) {
    dive(root_lower, root_upper, root);
  }

  // ---- branching machinery ----------------------------------------------
  Pseudocosts pc(n);
  long long pseudocost_updates = 0;
  long long strong_branch_probes = 0;
  int probe_budget = options_.branching.max_strong_branch_probes;
  lp::SimplexOptions sb_lp_options = options_.lp;
  sb_lp_options.max_iterations = options_.branching.strong_branch_iterations;
  const LpEngine sb_solver(sb_lp_options);
  telemetry::Histogram* pc_init_histogram = nullptr;
  if (telemetry::MetricsRegistry* mreg = ctx.metrics();
      mreg != nullptr &&
      options_.branching.rule == BranchingOptions::Rule::kPseudocost) {
    pc_init_histogram = &mreg->histogram(
        "etransform_milp_pseudocost_init_degradation",
        "Per-unit-fraction objective degradation measured by "
        "strong-branching probes",
        telemetry::MetricsRegistry::log_buckets(1e-4, 1e4, 10.0));
    mreg->counter("etransform_milp_strong_branch_probes_total",
                  "Strong-branching probes (two child LPs each)");
  }

  // Iteration-capped probe of one branching direction from the node's own
  // optimal basis. Returns the measured per-unit-fraction degradation, the
  // infeasible sentinel, or NaN when the probe was inconclusive.
  const auto probe_direction = [&](const Node& node, const LpSolution& relaxed,
                                   double node_bound, int j, bool up,
                                   double frac_moved) -> double {
    std::vector<double> lower = node.lower;
    std::vector<double> upper = node.upper;
    const double v = relaxed.values[static_cast<std::size_t>(j)];
    if (up) {
      lower[static_cast<std::size_t>(j)] = std::ceil(v);
    } else {
      upper[static_cast<std::size_t>(j)] = std::floor(v);
    }
    const LpSolution sol = sb_solver.solve(
        *prep, lower, upper, ctx,
        LpStartBasis(relaxed.basis.get(), LpStartBasis::Origin::kBoundChange));
    result.lp_iterations += sol.iterations;
    if (sol.status == SolveStatus::kInfeasible) return kInfeasibleScore;
    if (sol.status != SolveStatus::kOptimal) return kNaN;
    const double per_frac =
        std::max(0.0, sense_sign * sol.objective - node_bound) /
        std::max(frac_moved, 1e-9);
    pc.update(j, up, per_frac);
    ++pseudocost_updates;
    if (pc_init_histogram != nullptr) pc_init_histogram->observe(per_frac);
    return per_frac;
  };

  // Picks the branching variable for a node. Pseudocost product scoring
  // with strong-branching reliability initialization at shallow depth;
  // falls back to the legacy most-fractional rule when configured.
  const auto select_branch = [&](const Node& node, const LpSolution& relaxed,
                                 double node_bound) -> int {
    if (options_.branching.rule == BranchingOptions::Rule::kMostFractional) {
      return most_fractional(model, relaxed.values, integrality_tol);
    }
    struct Candidate {
      int var = 0;
      double f = 0.0;     // fractional part
      double dist = 0.0;  // distance to integrality
    };
    std::vector<Candidate> cands;
    for (int j = 0; j < n; ++j) {
      if (!model.variable(j).is_integer) continue;
      const double v = relaxed.values[static_cast<std::size_t>(j)];
      const double f = v - std::floor(v);
      const double dist = std::min(f, 1.0 - f);
      if (dist <= integrality_tol) continue;
      cands.push_back(Candidate{j, f, dist});
    }
    if (cands.empty()) return -1;
    // Probing every unreliable candidate would cost two LPs each; probe
    // only the most fractional few per node, the rest score on estimates.
    std::vector<char> may_probe(cands.size(), 0);
    if (node.depth <= options_.branching.strong_branch_max_depth &&
        probe_budget > 0) {
      std::vector<std::size_t> by_dist(cands.size());
      for (std::size_t k = 0; k < cands.size(); ++k) by_dist[k] = k;
      std::sort(by_dist.begin(), by_dist.end(),
                [&](std::size_t a, std::size_t b) {
                  if (cands[a].dist != cands[b].dist) {
                    return cands[a].dist > cands[b].dist;
                  }
                  return cands[a].var < cands[b].var;
                });
      int allowed = options_.branching.max_probes_per_node;
      for (const std::size_t k : by_dist) {
        if (allowed <= 0) break;
        if (pc.observations(cands[k].var) >= options_.branching.reliability) {
          continue;
        }
        may_probe[k] = 1;
        --allowed;
      }
    }
    int best = -1;
    double best_score = -1.0;
    double best_dist = 0.0;
    for (std::size_t k = 0; k < cands.size(); ++k) {
      const int j = cands[k].var;
      const double f = cands[k].f;
      const double dist = cands[k].dist;
      double down_est = pc.estimate(j, /*up=*/false) * f;
      double up_est = pc.estimate(j, /*up=*/true) * (1.0 - f);
      if (may_probe[k] && probe_budget > 0 && !ctx.deadline().expired() &&
          !ctx.cancelled()) {
        --probe_budget;
        ++strong_branch_probes;
        const double down = probe_direction(node, relaxed, node_bound, j,
                                            /*up=*/false, f);
        const double up = probe_direction(node, relaxed, node_bound, j,
                                          /*up=*/true, 1.0 - f);
        // A freshly measured value beats any historical average.
        if (!std::isnan(down)) {
          down_est = down == kInfeasibleScore ? down : down * f;
        }
        if (!std::isnan(up)) {
          up_est = up == kInfeasibleScore ? up : up * (1.0 - f);
        }
      }
      const double score =
          std::max(down_est, kScoreEps) * std::max(up_est, kScoreEps);
      if (score > best_score + 1e-12 ||
          (score > best_score - 1e-12 && dist > best_dist)) {
        best_score = score;
        best_dist = dist;
        best = j;
      }
    }
    return best >= 0 ? best
                     : most_fractional(model, relaxed.values, integrality_tol);
  };

  OpenNodes open;
  {
    auto root_node = std::make_shared<Node>();
    root_node->lower = root_lower;
    root_node->upper = root_upper;
    root_node->parent_basis = root.basis;
    root_node->parent_bound = sense_sign * root.objective;
    open.push(std::move(root_node));
  }

  const auto gap_closed = [&]() {
    if (!have_incumbent) return false;
    const double denom = std::max(1.0, std::abs(incumbent));
    return (incumbent - global_bound) / denom <= options_.search.relative_gap;
  };

  bool budget_exhausted = false;
  std::optional<MilpStatus> interrupted;
  // Per-node spans would dominate the trace; batch them so a million-node
  // search stays viewable. Each span covers up to kNodesPerBatchSpan nodes.
  constexpr long long kNodesPerBatchSpan = 256;
  std::optional<telemetry::TraceSpan> batch_span;
  long long next_batch_node = 0;
  while (!open.empty()) {
    if (telemetry::TraceRecorder* rec = ctx.trace();
        rec != nullptr && result.nodes >= next_batch_node) {
      batch_span.reset();
      batch_span.emplace(rec, "milp", "bnb.node_batch");
      next_batch_node = result.nodes + kNodesPerBatchSpan;
    }
    // The best open node defines the global bound.
    const double fresh_bound = open.best_bound();
    if (fresh_bound > global_bound + 1e-12) {
      stats.add("bound_improvements", 1.0);
      record_trace(fresh_bound);
      if (ctx.events.on_bound_improvement) {
        BoundEvent event;
        event.node = result.nodes;
        event.bound = sense_sign * fresh_bound;
        event.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
        ctx.events.on_bound_improvement(event);
      }
    }
    global_bound = fresh_bound;
    if (gap_closed()) break;
    if (result.nodes >= options_.search.max_nodes) {
      budget_exhausted = true;
      break;
    }
    interrupted = interruption();
    if (interrupted) break;
    const std::shared_ptr<Node> node =
        open.pop(/*depth_first=*/!have_incumbent);
    if (have_incumbent && node->parent_bound >= incumbent - 1e-12) {
      continue;  // pruned by bound
    }

    const LpSolution relaxed =
        solve_node(node->lower, node->upper, node->parent_basis.get());
    result.lp_iterations += relaxed.iterations;
    ++result.nodes;
    if (ctx.events.on_node) {
      NodeEvent event;
      event.node = result.nodes;
      event.depth = node->depth;
      event.relaxation = relaxed.status == SolveStatus::kOptimal
                             ? relaxed.objective
                             : kNaN;
      event.best_bound = sense_sign * global_bound;
      event.incumbent = have_incumbent ? sense_sign * incumbent : kNaN;
      event.open_nodes = open.size();
      ctx.events.on_node(event);
    }
    if (relaxed.status == SolveStatus::kInfeasible) continue;
    if (relaxed.status == SolveStatus::kIterationLimit) {
      budget_exhausted = true;
      continue;
    }
    if (relaxed.status == SolveStatus::kTimeLimit ||
        relaxed.status == SolveStatus::kCancelled) {
      // The deadline fired inside this node's LP; its bound is unusable,
      // so drop the node and unwind with the partial tree.
      interrupted = milp_status_of_lp(relaxed.status);
      break;
    }
    if (relaxed.status == SolveStatus::kUnbounded ||
        relaxed.status == SolveStatus::kNumericalError) {
      // A bounded-root MILP node cannot become unbounded by tightening
      // bounds, and a numerically failed node has no usable bound; treat
      // either defensively as a failed node.
      continue;
    }
    const double node_bound = sense_sign * relaxed.objective;
    // This node's LP value is the branching outcome its parent predicted:
    // feed the realized degradation back into the pseudocosts.
    if (node->branch_var >= 0) {
      const double frac_moved =
          node->branch_up ? 1.0 - node->branch_frac : node->branch_frac;
      if (frac_moved > 1e-9) {
        pc.update(node->branch_var, node->branch_up,
                  (node_bound - node->parent_bound) / frac_moved);
        ++pseudocost_updates;
      }
    }
    if (have_incumbent && node_bound >= incumbent - 1e-12) continue;

    if (all_integral(model, relaxed.values, integrality_tol)) {
      try_incumbent(relaxed.values, relaxed.objective);
      continue;
    }

    const int j = select_branch(*node, relaxed, node_bound);
    if (j < 0) continue;  // integral within tolerance after probing
    const double v = relaxed.values[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    // Down child: x_j <= floor(v).
    {
      auto child = std::make_shared<Node>();
      child->lower = node->lower;
      child->upper = node->upper;
      child->upper[static_cast<std::size_t>(j)] = std::floor(v);
      child->parent_basis = relaxed.basis;
      child->parent_bound = node_bound;
      child->depth = node->depth + 1;
      child->branch_var = j;
      child->branch_up = false;
      child->branch_frac = frac;
      if (child->lower[static_cast<std::size_t>(j)] <=
          child->upper[static_cast<std::size_t>(j)]) {
        open.push(std::move(child));
      }
    }
    // Up child: x_j >= ceil(v).
    {
      auto child = std::make_shared<Node>();
      child->lower = node->lower;
      child->upper = node->upper;
      child->lower[static_cast<std::size_t>(j)] = std::ceil(v);
      child->parent_basis = relaxed.basis;
      child->parent_bound = node_bound;
      child->depth = node->depth + 1;
      child->branch_var = j;
      child->branch_up = true;
      child->branch_frac = frac;
      if (child->lower[static_cast<std::size_t>(j)] <=
          child->upper[static_cast<std::size_t>(j)]) {
        open.push(std::move(child));
      }
    }
  }

  batch_span.reset();

  if (open.empty() && !budget_exhausted && !interrupted) {
    // Exhausted the tree: the incumbent (if any) is optimal.
    global_bound = have_incumbent ? incumbent : global_bound;
  }

  if (interrupted) {
    // Deadline or cancellation: report exactly that, with the incumbent (if
    // any) and the best proven bound so far as valid partial results.
    result.status = *interrupted;
    if (have_incumbent) {
      result.objective = sense_sign * incumbent;
      result.values = std::move(incumbent_values);
    }
  } else if (have_incumbent) {
    result.status = (!budget_exhausted && (open.empty() || gap_closed()))
                        ? MilpStatus::kOptimal
                        : MilpStatus::kFeasible;
    result.objective = sense_sign * incumbent;
    result.values = std::move(incumbent_values);
  } else {
    result.status = budget_exhausted ? MilpStatus::kNoSolutionFound
                                     : MilpStatus::kInfeasible;
  }
  result.best_bound = sense_sign * std::min(global_bound,
                                            have_incumbent ? incumbent
                                                           : global_bound);
  stats.add("nodes", result.nodes);
  stamp_reopt_counters();
  stats.add("strong_branch_probes",
            static_cast<double>(strong_branch_probes));
  stats.add("pseudocost_updates", static_cast<double>(pseudocost_updates));
  if (telemetry::MetricsRegistry* mreg = ctx.metrics();
      mreg != nullptr && strong_branch_probes > 0) {
    mreg->counter("etransform_milp_strong_branch_probes_total",
                  "Strong-branching probes (two child LPs each)")
        .add(static_cast<double>(strong_branch_probes));
  }
  record_trace(global_bound);
  return result;
}

}  // namespace etransform::milp
