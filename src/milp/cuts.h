// Cutting-plane subsystem for branch-and-bound: the pluggable CutGenerator
// interface, two production separators, and the activity-aged CutPool.
//
// Cuts are separated only at the root node under the original variable
// bounds (cut-and-branch), so every accepted inequality is valid for the
// whole tree: the strengthened relaxation is rebuilt once and shared by
// every node. Each separation round reads the fractional optimum plus its
// simplex basis, asks every registered generator for violated valid
// inequalities, appends the accepted rows to the working model, and
// re-solves warm: the old basis is mapped onto the grown standard form via
// lp::extend_basis() (new cut slacks basic, old duals untouched) and handed
// to the LpEngine with LpStartBasis::Origin::kRowsAdded, so the dual
// simplex prices out just the violated cut rows instead of repairing
// primal feasibility from scratch.
//
// Generators shipped here:
//  * GomoryMixedIntegerCutGenerator — reads simplex tableau rows of
//    fractional basic integer variables straight off the revised-simplex
//    basis (one BTRAN per row; lp::TableauRowExtractor) and applies the
//    bound-shifted Gomory mixed-integer rounding. Works on any MILP.
//  * CoverCutGenerator — lifted (extended) knapsack cover cuts on rows the
//    formulation tagged lp::RowStructure::kKnapsack / kBusinessImpact, plus
//    rows auto-detected as binary knapsacks (presolve drops tags, and the
//    solver-bench MILPs never had them).
//
// Writing your own separator is the extension point documented in
// DESIGN.md: subclass CutGenerator, emit valid inequalities over *model*
// variables into the CutPool, and register it on a BranchAndBoundSolver.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"
#include "milp/solver_options.h"

namespace etransform::milp {

/// One valid inequality over model variables, produced by a generator.
struct Cut {
  std::string name;
  std::vector<lp::Term> terms;
  lp::Relation relation = lp::Relation::kLessEqual;
  double rhs = 0.0;
  /// Normalized violation (violation / ||coefficients||) at generation time.
  double violation = 0.0;
  /// Pool bookkeeping: consecutive root LP solves this cut was slack in.
  int rounds_inactive = 0;
  /// Stable pool id, assigned by CutPool::add.
  long long id = -1;
};

/// Aggregate cut activity for one solve, surfaced via
/// MilpSolution::cut_stats().
struct CutStats {
  long long rounds = 0;     ///< separation rounds run at the root
  long long generated = 0;  ///< cuts accepted into the pool
  long long applied = 0;    ///< cut rows in the final relaxation
  long long purged = 0;     ///< cuts aged out by the activity policy
};

/// The pool of accepted cuts. Owns deduplication, activity aging, and the
/// generated/purged tallies. One pool lives per solve.
class CutPool {
 public:
  /// Accepts a cut unless an identical row (same relation/rhs/terms after
  /// normalization) is already pooled. Returns false on duplicates.
  bool add(Cut cut);

  /// Re-scores every cut against the latest root LP point: a cut binding
  /// (within `tol`, scaled by the row norm) resets its inactivity streak,
  /// a slack one extends it.
  void record_activity(const std::vector<double>& values, double tol);

  /// Drops cuts inactive for >= `max_inactive_rounds` consecutive solves.
  /// Returns the number purged.
  int purge(int max_inactive_rounds);

  [[nodiscard]] const std::vector<Cut>& cuts() const { return cuts_; }
  [[nodiscard]] int size() const { return static_cast<int>(cuts_.size()); }
  [[nodiscard]] long long total_generated() const { return total_generated_; }
  [[nodiscard]] long long total_purged() const { return total_purged_; }

 private:
  std::vector<Cut> cuts_;
  std::vector<std::string> signatures_;  // parallel to cuts_
  long long next_id_ = 0;
  long long total_generated_ = 0;
  long long total_purged_ = 0;
};

/// Everything a separator may read: the current root relaxation (which
/// already contains previously accepted cut rows), its standard form, and
/// the root bounds per model variable. All pointers outlive the call.
struct SeparationContext {
  const lp::Model* model = nullptr;        // == prep->model
  const lp::PreparedLp* prep = nullptr;    // current standard form
  const std::vector<double>* lower = nullptr;  // root bounds, one per var
  const std::vector<double>* upper = nullptr;
  CutOptions options;
  double integrality_tol = 1e-6;
};

/// A cut separator. Implementations read the fractional optimum in `lp`
/// (solved over `ctx.prep`) and add violated *globally valid* inequalities
/// over model variables to `pool`. Called once per root separation round.
///
/// separate() is const on purpose: per-solve scratch must live on the call
/// stack (or in the CutPool), never in generator members. A generator set
/// may be shared by concurrent solves — SolveFarm jobs and the parallel
/// tree search both reuse solvers — so any mutable member a generator does
/// keep (telemetry tallies and the like) must be internally synchronized.
class CutGenerator {
 public:
  virtual ~CutGenerator() = default;

  /// Separator name, used in telemetry and cut names.
  [[nodiscard]] virtual const char* name() const = 0;

  /// Appends violated cuts to `pool`; returns how many were accepted.
  virtual int separate(const SeparationContext& ctx, const lp::LpSolution& lp,
                       CutPool& pool) const = 0;
};

/// Gomory mixed-integer cuts off the revised-simplex basis. For every basic
/// integer variable whose value is at least `CutOptions::min_fractionality`
/// away from an integer, one BTRAN (lp::TableauRowExtractor) recovers the
/// tableau row, the nonbasic variables are shifted onto their resting
/// bounds, and the mixed-integer rounding inequality is translated back to
/// model-variable space (row slacks substituted out).
class GomoryMixedIntegerCutGenerator : public CutGenerator {
 public:
  [[nodiscard]] const char* name() const override { return "gomory"; }
  int separate(const SeparationContext& ctx, const lp::LpSolution& lp,
               CutPool& pool) const override;
};

/// Lifted knapsack cover cuts sum_{j in E(C)} x_j <= |C| - 1, from a greedy
/// minimal cover C of a binary knapsack row extended by every item at least
/// as heavy as the heaviest cover member. Rows tagged by the formulation
/// (kKnapsack capacity rows, kBusinessImpact omega rows) are preferred;
/// untagged rows are auto-detected.
class CoverCutGenerator : public CutGenerator {
 public:
  [[nodiscard]] const char* name() const override { return "cover"; }
  int separate(const SeparationContext& ctx, const lp::LpSolution& lp,
               CutPool& pool) const override;
};

/// The production separator set for `options` (Gomory and/or cover,
/// per the toggles). Used when no generator was registered explicitly.
[[nodiscard]] std::vector<std::shared_ptr<CutGenerator>>
default_cut_generators(const CutOptions& options);

/// Left-hand-side value of `cut` at a model-variable assignment.
[[nodiscard]] double cut_activity(const Cut& cut,
                                  const std::vector<double>& values);

/// True when `values` satisfies `cut` within `tol` — the check the validity
/// property tests run against known integer optima.
[[nodiscard]] bool cut_satisfied(const Cut& cut,
                                 const std::vector<double>& values,
                                 double tol = 1e-6);

}  // namespace etransform::milp
