// SolverOptions: the one documented tuning aggregate for the MILP stack.
//
// Historically every layer grew its own knob struct (a flat MilpOptions for
// the search, lp::SimplexOptions for the LP engine, nothing at all for
// presolve) and callers had to know which layer owned which field.
// SolverOptions
// consolidates all of it with one sub-struct per layer:
//
//   SolverOptions
//     .search     branch-and-bound search budget & tolerances
//     .cuts       root cutting-plane loop (Gomory + cover separators)
//     .branching  variable selection (pseudocost / most-fractional)
//     .lp         the simplex engine (lp::SimplexOptions, unchanged)
//     .presolve   presolve toggles (consumed by the planner pipeline)
//
// The legacy flat MilpOptions is gone — branch_and_bound.h keeps only a
// poisoned declaration so stale code fails to compile with a pointer here.
#pragma once

#include "lp/simplex.h"

namespace etransform::milp {

/// Branch-and-bound search budget and tolerances.
struct SearchOptions {
  /// Maximum branch-and-bound nodes to expand.
  int max_nodes = 200000;
  /// Wall-clock budget in milliseconds; 0 disables the limit. Combined with
  /// the SolveContext deadline (whichever falls first wins) and enforced
  /// inside node LPs at refactorization granularity.
  int time_limit_ms = 0;
  /// Stop once (incumbent - bound) / max(1, |incumbent|) <= relative_gap.
  double relative_gap = 1e-9;
  /// Integrality tolerance.
  double integrality_tol = 1e-6;
  /// Run the diving heuristic at the root to find an early incumbent.
  bool root_dive = true;
  /// Warm-start each node's LP from its parent's optimal basis instead of
  /// cold-starting phase 1. Off is only useful for A/B measurements.
  bool warm_start_nodes = true;
  /// Tree-search worker threads. 1 (the default) keeps the classic
  /// sequential node loop; > 1 shards the open-node frontier across that
  /// many workers on a work-stealing ThreadPool (each with its own LpEngine,
  /// PreparedLp, and parent-basis warm starts); <= 0 uses one worker per
  /// hardware thread. The root LP, cut separation, and the root dive stay
  /// sequential. Composes multiplicatively with farm-level parallelism
  /// (SolveFarm workers / the CLI's --jobs): 4 jobs x 8 threads = 32 LPs in
  /// flight.
  int threads = 1;
  /// Deterministic parallel search: nodes are dequeued in fixed epochs of
  /// `deterministic_epoch` nodes, their LPs solved in parallel, and the
  /// results applied in dequeue order — so the explored tree, node count,
  /// objective, and lp_iterations are identical for every `threads` value
  /// (the tree does depend on the epoch width, and runs that hit the
  /// deadline mid-search remain timing-dependent). Off (the default) lets
  /// workers race asynchronously: same optimum, but node order and count
  /// vary run to run.
  bool deterministic = false;
  /// Node-dequeue epoch width for deterministic mode. Fixed independently
  /// of `threads` on purpose: it is what makes the explored tree
  /// thread-count-invariant.
  int deterministic_epoch = 8;
};

/// Root cutting-plane loop. Cuts are separated only at the root node with
/// the original bounds (cut-and-branch), so every accepted cut is globally
/// valid; the strengthened relaxation is then shared by the whole tree.
struct CutOptions {
  /// Master switch; off reproduces the pre-cut solver exactly.
  bool enable = true;
  /// Maximum separation rounds at the root.
  int max_rounds = 10;
  /// Per-generator cap on cuts accepted per round (most violated first).
  int max_cuts_per_round = 24;
  /// A cut must be violated by at least this much at the current fractional
  /// optimum to enter the pool.
  double min_violation = 1e-4;
  /// Pool aging: a cut whose row was slack (nonbinding) for this many
  /// consecutive root LP solves is purged before branching starts.
  int max_inactive_rounds = 3;
  /// Enable the Gomory mixed-integer separator (tableau rows via BTRAN).
  bool gomory = true;
  /// Enable the lifted knapsack cover separator (tagged + detected rows).
  bool cover = true;
  /// Gomory rows are only separated from basic integer variables at least
  /// this far from integrality ("away" parameter).
  double min_fractionality = 5e-3;
  /// Reject cuts denser than this fraction of the model's columns (with a
  /// floor of 24 nonzeros so small models are unaffected). A dense row
  /// slows *every* node LP in the tree; unless it closes real gap it costs
  /// far more than it saves.
  double max_density = 0.4;
  /// Tailing-off control: stop separating once the root objective improves
  /// by less than this (relative) for two consecutive rounds.
  double tailoff = 1e-6;
};

/// Branching variable selection.
struct BranchingOptions {
  enum class Rule {
    kPseudocost,      // reliability-initialized pseudocosts (default)
    kMostFractional,  // legacy rule: largest distance to integrality
  };
  Rule rule = Rule::kPseudocost;
  /// A variable's pseudocost is trusted once both directions have at least
  /// this many observations; below that, shallow nodes strong-branch it.
  int reliability = 2;
  /// Strong-branching probes only run at node depth <= this. Probe LPs on
  /// a cut-strengthened root relaxation are noticeably costlier than on
  /// the plain one, so the default stays shallow.
  int strong_branch_max_depth = 4;
  /// Pivot cap per strong-branching child LP (keeps probes cheap).
  int strong_branch_iterations = 100;
  /// Total strong-branching probe budget per solve (two LPs per probe).
  int max_strong_branch_probes = 256;
  /// Probe cap per node: only the most fractional unreliable candidates
  /// are probed, the rest score on pseudocost estimates.
  int max_probes_per_node = 8;
};

/// Presolve toggles, consumed by pipelines that run lp::presolve before the
/// solver (the planner's exact path; the B&B core itself never presolves).
struct PresolveOptions {
  bool enable = true;
};

/// All tuning for a MILP solve, one sub-struct per layer. See the file
/// header for the layer map. Default-constructed options are the production
/// configuration (cuts on, pseudocost branching, sparse simplex).
struct SolverOptions {
  SearchOptions search;
  CutOptions cuts;
  BranchingOptions branching;
  /// Options forwarded to the LP engine.
  lp::SimplexOptions lp;
  PresolveOptions presolve;
};

}  // namespace etransform::milp
