#include "model/instance_io.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "common/error.h"
#include "common/strings.h"

namespace etransform {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string format_number(double value) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Shortest representation that round-trips the double exactly.
  char raw[64];
  std::snprintf(raw, sizeof(raw), "%.12g", value);
  double reparsed = 0.0;
  std::sscanf(raw, "%lf", &reparsed);
  if (reparsed == value) return raw;
  std::snprintf(raw, sizeof(raw), "%.17g", value);
  return raw;
}

/// Names may not contain whitespace or '#'; escape with '_' on write.
std::string sanitize_name(const std::string& raw) {
  std::string name;
  name.reserve(raw.size());
  for (const char c : raw) {
    name.push_back(
        (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '#') ? '_'
                                                                       : c);
  }
  return name.empty() ? std::string("_") : name;
}

void write_schedule(std::ostream& out, const char* key,
                    const std::string& site, const StepSchedule& schedule) {
  out << key << ' ' << site;
  for (const auto& tier : schedule.tiers()) {
    out << ' ' << format_number(tier.upto) << ' '
        << format_number(tier.unit_price);
  }
  out << '\n';
}

class Parser {
 public:
  explicit Parser(const std::string& text) : input_(text) {}

  ConsolidationInstance run() {
    std::string line;
    bool saw_header = false;
    bool saw_end = false;
    while (std::getline(input_, line)) {
      ++line_number_;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      const auto fields = split_whitespace(line);
      if (fields.empty()) continue;
      if (!saw_header) {
        if (fields.size() < 2 || fields[0] != "etransform-instance" ||
            fields[1] != "v1") {
          fail("file must start with 'etransform-instance v1'");
        }
        saw_header = true;
        continue;
      }
      if (saw_end) fail("content after 'end'");
      if (fields[0] == "end") {
        saw_end = true;
        continue;
      }
      dispatch(fields);
    }
    if (!saw_header) fail("empty file");
    if (!saw_end) fail("missing 'end'");
    finalize();
    validate_instance(instance_);
    return std::move(instance_);
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("instance line " + std::to_string(line_number_) + ": " +
                     what);
  }

  double number(const std::string& field) const {
    if (field == "inf") return kInf;
    if (field == "-inf") return -kInf;
    try {
      std::size_t used = 0;
      const double value = std::stod(field, &used);
      if (used != field.size()) fail("bad number '" + field + "'");
      return value;
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception&) {
      fail("bad number '" + field + "'");
    }
  }

  int integer(const std::string& field) const {
    const double value = number(field);
    if (value != std::floor(value) || std::abs(value) > 1e18) {
      fail("expected integer, got '" + field + "'");
    }
    return static_cast<int>(value);
  }

  void expect_arity(const std::vector<std::string>& fields, std::size_t n,
                    const char* what) const {
    if (fields.size() != n) {
      fail(std::string("'") + what + "' expects " + std::to_string(n - 1) +
           " fields");
    }
  }

  int lookup(const std::unordered_map<std::string, int>& index,
             const std::string& name, const char* kind) const {
    const auto it = index.find(name);
    if (it == index.end()) {
      fail(std::string("unknown ") + kind + " '" + name + "'");
    }
    return it->second;
  }

  StepSchedule schedule_from(const std::vector<std::string>& fields,
                             std::size_t first) const {
    if (fields.size() <= first || (fields.size() - first) % 2 != 0) {
      fail("schedule needs (upto, price) pairs");
    }
    std::vector<PriceTier> tiers;
    for (std::size_t k = first; k + 1 < fields.size(); k += 2) {
      tiers.push_back(PriceTier{number(fields[k]), number(fields[k + 1])});
    }
    try {
      return StepSchedule(std::move(tiers));
    } catch (const InvalidInputError& e) {
      fail(e.what());
    }
  }

  std::vector<double> per_location(const std::vector<std::string>& fields,
                                   std::size_t first) const {
    if (fields.size() - first !=
        static_cast<std::size_t>(instance_.num_locations())) {
      fail("expected one value per location (" +
           std::to_string(instance_.num_locations()) + ")");
    }
    std::vector<double> values;
    for (std::size_t k = first; k < fields.size(); ++k) {
      values.push_back(number(fields[k]));
    }
    return values;
  }

  void dispatch(const std::vector<std::string>& fields) {
    const std::string& key = fields[0];
    if (key == "name") {
      expect_arity(fields, 2, "name");
      instance_.name = fields[1];
    } else if (key == "params") {
      expect_arity(fields, 6, "params");
      instance_.params.server_power_kw = number(fields[1]);
      instance_.params.servers_per_admin = number(fields[2]);
      instance_.params.vpn_link_capacity_megabits = number(fields[3]);
      instance_.params.dr_server_cost = number(fields[4]);
      instance_.params.hours_per_month = number(fields[5]);
    } else if (key == "location") {
      expect_arity(fields, 4, "location");
      location_index_[fields[1]] =
          static_cast<int>(instance_.locations.size());
      instance_.locations.push_back(
          UserLocation{fields[1], {number(fields[2]), number(fields[3])}});
    } else if (key == "site") {
      expect_arity(fields, 5, "site");
      DataCenterSite site;
      site.name = fields[1];
      site.position = {number(fields[2]), number(fields[3])};
      site.capacity_servers = integer(fields[4]);
      site_index_[fields[1]] = static_cast<int>(instance_.sites.size());
      instance_.sites.push_back(std::move(site));
      instance_.latency_ms.emplace_back();
      vpn_rows_.emplace_back();
    } else if (key == "site.space" || key == "site.power" ||
               key == "site.labor" || key == "site.wan") {
      if (fields.size() < 4) fail("schedule line too short");
      const int site = lookup(site_index_, fields[1], "site");
      auto& s = instance_.sites[static_cast<std::size_t>(site)];
      const StepSchedule schedule = schedule_from(fields, 2);
      if (key == "site.space") s.space_cost_per_server = schedule;
      else if (key == "site.power") s.power_cost_per_kwh = schedule;
      else if (key == "site.labor") s.labor_cost_per_admin = schedule;
      else s.wan_cost_per_megabit = schedule;
    } else if (key == "site.latency") {
      const int site = lookup(site_index_, fields[1], "site");
      instance_.latency_ms[static_cast<std::size_t>(site)] =
          per_location(fields, 2);
    } else if (key == "site.vpn") {
      const int site = lookup(site_index_, fields[1], "site");
      vpn_rows_[static_cast<std::size_t>(site)] = per_location(fields, 2);
      any_vpn_ = true;
    } else if (key == "group") {
      if (fields.size() < 4) fail("'group' line too short");
      ApplicationGroup group;
      group.name = fields[1];
      group.servers = integer(fields[2]);
      group.monthly_data_megabits = number(fields[3]);
      group.users_per_location = per_location(fields, 4);
      group_index_[fields[1]] = static_cast<int>(instance_.groups.size());
      instance_.groups.push_back(std::move(group));
    } else if (key == "group.penalty") {
      if (fields.size() < 4 || fields.size() % 2 != 0) {
        fail("'group.penalty' expects (threshold, per_user) pairs");
      }
      const int group = lookup(group_index_, fields[1], "group");
      std::vector<LatencyPenaltyStep> steps;
      for (std::size_t k = 2; k + 1 < fields.size(); k += 2) {
        steps.push_back(
            LatencyPenaltyStep{number(fields[k]), number(fields[k + 1])});
      }
      try {
        instance_.groups[static_cast<std::size_t>(group)].latency_penalty =
            LatencyPenaltyFunction(std::move(steps));
      } catch (const InvalidInputError& e) {
        fail(e.what());
      }
    } else if (key == "group.allow") {
      if (fields.size() < 3) fail("'group.allow' expects sites");
      const int group = lookup(group_index_, fields[1], "group");
      auto& allowed =
          instance_.groups[static_cast<std::size_t>(group)].allowed_sites;
      for (std::size_t k = 2; k < fields.size(); ++k) {
        allowed.push_back(lookup(site_index_, fields[k], "site"));
      }
    } else if (key == "group.pin") {
      expect_arity(fields, 3, "group.pin");
      const int group = lookup(group_index_, fields[1], "group");
      instance_.groups[static_cast<std::size_t>(group)].pinned_site =
          lookup(site_index_, fields[2], "site");
    } else if (key == "separate") {
      expect_arity(fields, 3, "separate");
      instance_.separations.push_back(
          SeparationConstraint{lookup(group_index_, fields[1], "group"),
                               lookup(group_index_, fields[2], "group")});
    } else if (key == "asis") {
      expect_arity(fields, 8, "asis");
      AsIsDataCenter center;
      center.name = fields[1];
      center.position = {number(fields[2]), number(fields[3])};
      center.space_cost_per_server = number(fields[4]);
      center.wan_cost_per_megabit = number(fields[5]);
      center.power_cost_per_kwh = number(fields[6]);
      center.labor_cost_per_admin = number(fields[7]);
      asis_index_[fields[1]] =
          static_cast<int>(instance_.as_is_centers.size());
      instance_.as_is_centers.push_back(std::move(center));
      instance_.as_is_latency_ms.emplace_back();
    } else if (key == "asis.latency") {
      const int center = lookup(asis_index_, fields[1], "as-is center");
      instance_.as_is_latency_ms[static_cast<std::size_t>(center)] =
          per_location(fields, 2);
    } else if (key == "place") {
      expect_arity(fields, 3, "place");
      placements_.emplace_back(lookup(group_index_, fields[1], "group"),
                               lookup(asis_index_, fields[2], "as-is center"));
    } else {
      fail("unknown directive '" + key + "'");
    }
  }

  void finalize() {
    // Latency rows default to zero when omitted only if locations exist and
    // the row was never set; enforce explicit rows instead.
    for (std::size_t j = 0; j < instance_.latency_ms.size(); ++j) {
      if (instance_.latency_ms[j].empty() && instance_.num_locations() > 0) {
        throw ParseError("site '" + instance_.sites[j].name +
                         "' is missing its site.latency line");
      }
    }
    if (any_vpn_) {
      instance_.use_vpn_links = true;
      for (std::size_t j = 0; j < vpn_rows_.size(); ++j) {
        if (vpn_rows_[j].empty()) {
          throw ParseError("site '" + instance_.sites[j].name +
                           "' is missing its site.vpn line (VPN mode)");
        }
      }
      instance_.vpn_link_monthly_cost = vpn_rows_;
    }
    if (!placements_.empty()) {
      instance_.as_is_placement.assign(
          static_cast<std::size_t>(instance_.num_groups()), -1);
      for (const auto& [group, center] : placements_) {
        instance_.as_is_placement[static_cast<std::size_t>(group)] = center;
        instance_.as_is_centers[static_cast<std::size_t>(center)].servers +=
            instance_.groups[static_cast<std::size_t>(group)].servers;
      }
      for (int i = 0; i < instance_.num_groups(); ++i) {
        if (instance_.as_is_placement[static_cast<std::size_t>(i)] < 0) {
          throw ParseError(
              "group '" + instance_.groups[static_cast<std::size_t>(i)].name +
              "' has no 'place' line (all groups need one when any has)");
        }
      }
    }
    // As-is latency rows are optional as a block: all empty -> drop.
    bool any_asis_latency = false;
    for (const auto& row : instance_.as_is_latency_ms) {
      any_asis_latency |= !row.empty();
    }
    if (!any_asis_latency) {
      instance_.as_is_latency_ms.clear();
    } else {
      for (std::size_t d = 0; d < instance_.as_is_latency_ms.size(); ++d) {
        if (instance_.as_is_latency_ms[d].empty()) {
          throw ParseError("as-is center '" +
                           instance_.as_is_centers[d].name +
                           "' is missing its asis.latency line");
        }
      }
    }
  }

  std::istringstream input_;
  int line_number_ = 0;
  ConsolidationInstance instance_;
  std::unordered_map<std::string, int> location_index_;
  std::unordered_map<std::string, int> site_index_;
  std::unordered_map<std::string, int> group_index_;
  std::unordered_map<std::string, int> asis_index_;
  std::vector<std::vector<Money>> vpn_rows_;
  std::vector<std::pair<int, int>> placements_;
  bool any_vpn_ = false;
};

}  // namespace

void write_instance(const ConsolidationInstance& instance,
                    std::ostream& out) {
  validate_instance(instance);
  out << "etransform-instance v1\n";
  out << "name " << sanitize_name(instance.name) << '\n';
  const auto& p = instance.params;
  out << "params " << format_number(p.server_power_kw) << ' '
      << format_number(p.servers_per_admin) << ' '
      << format_number(p.vpn_link_capacity_megabits) << ' '
      << format_number(p.dr_server_cost) << ' '
      << format_number(p.hours_per_month) << '\n';
  for (const auto& location : instance.locations) {
    out << "location " << sanitize_name(location.name) << ' '
        << format_number(location.position.x) << ' '
        << format_number(location.position.y) << '\n';
  }
  for (int j = 0; j < instance.num_sites(); ++j) {
    const auto& site = instance.sites[static_cast<std::size_t>(j)];
    const std::string name = sanitize_name(site.name);
    out << "site " << name << ' ' << format_number(site.position.x) << ' '
        << format_number(site.position.y) << ' ' << site.capacity_servers
        << '\n';
    write_schedule(out, "site.space", name, site.space_cost_per_server);
    write_schedule(out, "site.power", name, site.power_cost_per_kwh);
    write_schedule(out, "site.labor", name, site.labor_cost_per_admin);
    write_schedule(out, "site.wan", name, site.wan_cost_per_megabit);
    out << "site.latency " << name;
    for (const double ms : instance.latency_ms[static_cast<std::size_t>(j)]) {
      out << ' ' << format_number(ms);
    }
    out << '\n';
    if (instance.use_vpn_links) {
      out << "site.vpn " << name;
      for (const double cost :
           instance.vpn_link_monthly_cost[static_cast<std::size_t>(j)]) {
        out << ' ' << format_number(cost);
      }
      out << '\n';
    }
  }
  for (int i = 0; i < instance.num_groups(); ++i) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    const std::string name = sanitize_name(group.name);
    out << "group " << name << ' ' << group.servers << ' '
        << format_number(group.monthly_data_megabits);
    for (const double users : group.users_per_location) {
      out << ' ' << format_number(users);
    }
    out << '\n';
    if (!group.latency_penalty.is_insensitive()) {
      out << "group.penalty " << name;
      for (const auto& step : group.latency_penalty.steps()) {
        out << ' ' << format_number(step.threshold_ms) << ' '
            << format_number(step.penalty_per_user);
      }
      out << '\n';
    }
    if (!group.allowed_sites.empty()) {
      out << "group.allow " << name;
      for (const int site : group.allowed_sites) {
        out << ' '
            << sanitize_name(
                   instance.sites[static_cast<std::size_t>(site)].name);
      }
      out << '\n';
    }
    if (group.pinned_site >= 0) {
      out << "group.pin " << name << ' '
          << sanitize_name(instance.sites[static_cast<std::size_t>(
                                              group.pinned_site)]
                               .name)
          << '\n';
    }
  }
  for (const auto& sep : instance.separations) {
    out << "separate "
        << sanitize_name(
               instance.groups[static_cast<std::size_t>(sep.group_a)].name)
        << ' '
        << sanitize_name(
               instance.groups[static_cast<std::size_t>(sep.group_b)].name)
        << '\n';
  }
  for (std::size_t d = 0; d < instance.as_is_centers.size(); ++d) {
    const auto& center = instance.as_is_centers[d];
    const std::string name = sanitize_name(center.name);
    out << "asis " << name << ' ' << format_number(center.position.x) << ' '
        << format_number(center.position.y) << ' '
        << format_number(center.space_cost_per_server) << ' '
        << format_number(center.wan_cost_per_megabit) << ' '
        << format_number(center.power_cost_per_kwh) << ' '
        << format_number(center.labor_cost_per_admin) << '\n';
    if (!instance.as_is_latency_ms.empty()) {
      out << "asis.latency " << name;
      for (const double ms : instance.as_is_latency_ms[d]) {
        out << ' ' << format_number(ms);
      }
      out << '\n';
    }
  }
  for (std::size_t i = 0; i < instance.as_is_placement.size(); ++i) {
    out << "place " << sanitize_name(instance.groups[i].name) << ' '
        << sanitize_name(
               instance
                   .as_is_centers[static_cast<std::size_t>(
                       instance.as_is_placement[i])]
                   .name)
        << '\n';
  }
  out << "end\n";
}

std::string write_instance(const ConsolidationInstance& instance) {
  std::ostringstream out;
  write_instance(instance, out);
  return out.str();
}

ConsolidationInstance parse_instance(const std::string& text) {
  Parser parser(text);
  return parser.run();
}

ConsolidationInstance parse_instance(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_instance(buffer.str());
}

std::string write_horizon(const PlanningHorizon& horizon,
                          const ConsolidationInstance& instance) {
  validate_horizon(instance, horizon);
  std::ostringstream out;
  out << "etransform-horizon v1\n";
  if (horizon.migration_cost_per_server != 0.0) {
    out << "migration_cost "
        << format_number(horizon.migration_cost_per_server) << '\n';
  }
  for (std::size_t t = 0; t < horizon.periods.size(); ++t) {
    const auto& period = horizon.periods[t];
    const std::string name =
        sanitize_name(horizon.period_name(static_cast<int>(t)));
    out << "period " << name << ' ' << format_number(period.weight) << ' '
        << format_number(period.multiplier) << '\n';
    if (!period.group_multipliers.empty()) {
      out << "period.group_multipliers " << name;
      for (const double m : period.group_multipliers) {
        out << ' ' << format_number(m);
      }
      out << '\n';
    }
    if (!period.failed_sites.empty()) {
      out << "period.fail " << name;
      for (const int j : period.failed_sites) {
        out << ' '
            << sanitize_name(
                   instance.sites[static_cast<std::size_t>(j)].name);
      }
      out << '\n';
    }
  }
  out << "end\n";
  return out.str();
}

PlanningHorizon parse_horizon(const std::string& text,
                              const ConsolidationInstance& instance) {
  std::unordered_map<std::string, int> site_index;
  for (int j = 0; j < instance.num_sites(); ++j) {
    site_index[sanitize_name(
        instance.sites[static_cast<std::size_t>(j)].name)] = j;
  }
  std::unordered_map<std::string, int> period_index;
  PlanningHorizon horizon;
  std::istringstream input(text);
  std::string line;
  int line_number = 0;
  bool saw_header = false;
  bool saw_end = false;
  const auto fail = [&](const std::string& what) -> void {
    throw ParseError("horizon line " + std::to_string(line_number) + ": " +
                     what);
  };
  const auto number = [&](const std::string& field) {
    try {
      std::size_t used = 0;
      const double value = std::stod(field, &used);
      if (used != field.size()) fail("bad number '" + field + "'");
      return value;
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception&) {
      fail("bad number '" + field + "'");
    }
    return 0.0;
  };
  const auto period_at = [&](const std::string& name) -> DemandPeriod& {
    const auto it = period_index.find(name);
    if (it == period_index.end()) fail("unknown period '" + name + "'");
    return horizon.periods[static_cast<std::size_t>(it->second)];
  };
  while (std::getline(input, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto fields = split_whitespace(line);
    if (fields.empty()) continue;
    if (!saw_header) {
      if (fields.size() < 2 || fields[0] != "etransform-horizon" ||
          fields[1] != "v1") {
        fail("file must start with 'etransform-horizon v1'");
      }
      saw_header = true;
      continue;
    }
    if (saw_end) fail("content after 'end'");
    const std::string& key = fields[0];
    if (key == "end") {
      saw_end = true;
    } else if (key == "migration_cost") {
      if (fields.size() != 2) fail("'migration_cost' expects one field");
      horizon.migration_cost_per_server = number(fields[1]);
    } else if (key == "period") {
      if (fields.size() != 4) {
        fail("'period' expects <name> <weight> <multiplier>");
      }
      if (period_index.count(fields[1]) != 0) {
        fail("duplicate period '" + fields[1] + "'");
      }
      DemandPeriod period;
      period.name = fields[1];
      period.weight = number(fields[2]);
      period.multiplier = number(fields[3]);
      period_index[fields[1]] = static_cast<int>(horizon.periods.size());
      horizon.periods.push_back(std::move(period));
    } else if (key == "period.group_multipliers") {
      if (fields.size() < 3) fail("'period.group_multipliers' too short");
      DemandPeriod& period = period_at(fields[1]);
      if (fields.size() - 2 !=
          static_cast<std::size_t>(instance.num_groups())) {
        fail("expected one multiplier per group (" +
             std::to_string(instance.num_groups()) + ")");
      }
      period.group_multipliers.clear();
      for (std::size_t k = 2; k < fields.size(); ++k) {
        period.group_multipliers.push_back(number(fields[k]));
      }
    } else if (key == "period.fail") {
      if (fields.size() < 3) fail("'period.fail' expects site names");
      DemandPeriod& period = period_at(fields[1]);
      for (std::size_t k = 2; k < fields.size(); ++k) {
        const auto it = site_index.find(fields[k]);
        if (it == site_index.end()) {
          fail("unknown site '" + fields[k] + "'");
        }
        period.failed_sites.push_back(it->second);
      }
    } else {
      fail("unknown directive '" + key + "'");
    }
  }
  if (!saw_header) fail("empty file");
  if (!saw_end) fail("missing 'end'");
  validate_horizon(instance, horizon);
  return horizon;
}

}  // namespace etransform
