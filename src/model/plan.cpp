#include "model/plan.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace etransform {

int Plan::sites_used() const {
  std::set<int> used(primary.begin(), primary.end());
  return static_cast<int>(used.size());
}

int Plan::total_backup_servers() const {
  int total = 0;
  for (const int g : backup_servers) total += g;
  return total;
}

std::vector<int> required_backup_servers(const ConsolidationInstance& instance,
                                         const std::vector<int>& primary,
                                         const std::vector<int>& secondary) {
  const int num_sites = instance.num_sites();
  if (primary.size() != static_cast<std::size_t>(instance.num_groups()) ||
      secondary.size() != primary.size()) {
    throw InvalidInputError(
        "required_backup_servers: assignment size mismatch");
  }
  // load[a][b]: servers whose primary is a and secondary is b.
  std::vector<std::vector<long long>> load(
      static_cast<std::size_t>(num_sites),
      std::vector<long long>(static_cast<std::size_t>(num_sites), 0));
  for (int i = 0; i < instance.num_groups(); ++i) {
    const int a = primary[static_cast<std::size_t>(i)];
    const int b = secondary[static_cast<std::size_t>(i)];
    if (a < 0 || a >= num_sites || b < 0 || b >= num_sites) {
      throw InvalidInputError(
          "required_backup_servers: assignment out of range");
    }
    load[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] +=
        instance.groups[static_cast<std::size_t>(i)].servers;
  }
  std::vector<int> backups(static_cast<std::size_t>(num_sites), 0);
  for (int b = 0; b < num_sites; ++b) {
    long long worst = 0;
    for (int a = 0; a < num_sites; ++a) {
      worst = std::max(worst,
                       load[static_cast<std::size_t>(a)][
                           static_cast<std::size_t>(b)]);
    }
    backups[static_cast<std::size_t>(b)] = static_cast<int>(worst);
  }
  return backups;
}

std::vector<int> dedicated_backup_servers(
    const ConsolidationInstance& instance, const std::vector<int>& primary,
    const std::vector<int>& secondary) {
  const int num_sites = instance.num_sites();
  if (primary.size() != static_cast<std::size_t>(instance.num_groups()) ||
      secondary.size() != primary.size()) {
    throw InvalidInputError(
        "dedicated_backup_servers: assignment size mismatch");
  }
  std::vector<int> backups(static_cast<std::size_t>(num_sites), 0);
  for (int i = 0; i < instance.num_groups(); ++i) {
    const int b = secondary[static_cast<std::size_t>(i)];
    if (b < 0 || b >= num_sites ||
        primary[static_cast<std::size_t>(i)] == b) {
      throw InvalidInputError(
          "dedicated_backup_servers: assignment out of range");
    }
    backups[static_cast<std::size_t>(b)] +=
        instance.groups[static_cast<std::size_t>(i)].servers;
  }
  return backups;
}

std::vector<std::string> check_plan(const ConsolidationInstance& instance,
                                    const Plan& plan) {
  std::vector<std::string> problems;
  const int num_sites = instance.num_sites();
  const int num_groups = instance.num_groups();
  if (static_cast<int>(plan.primary.size()) != num_groups) {
    problems.push_back("primary assignment does not cover every group");
    return problems;
  }
  const bool dr = plan.has_dr();
  if (dr && static_cast<int>(plan.secondary.size()) != num_groups) {
    problems.push_back("secondary assignment does not cover every group");
    return problems;
  }

  std::vector<long long> primary_servers(static_cast<std::size_t>(num_sites),
                                         0);
  for (int i = 0; i < num_groups; ++i) {
    const auto& group = instance.groups[static_cast<std::size_t>(i)];
    const int j = plan.primary[static_cast<std::size_t>(i)];
    if (j < 0 || j >= num_sites) {
      problems.push_back("group '" + group.name + "' placed at invalid site");
      continue;
    }
    primary_servers[static_cast<std::size_t>(j)] += group.servers;
    if (group.pinned_site >= 0 && j != group.pinned_site) {
      problems.push_back("group '" + group.name + "' violates its pin");
    }
    if (!group.allowed_sites.empty() && group.pinned_site < 0) {
      if (std::find(group.allowed_sites.begin(), group.allowed_sites.end(),
                    j) == group.allowed_sites.end()) {
        problems.push_back("group '" + group.name +
                           "' placed outside its allowed sites");
      }
    }
    if (dr) {
      const int b = plan.secondary[static_cast<std::size_t>(i)];
      if (b < 0 || b >= num_sites) {
        problems.push_back("group '" + group.name +
                           "' has invalid secondary site");
      } else if (b == j) {
        problems.push_back("group '" + group.name +
                           "' has identical primary and secondary");
      }
    }
  }

  std::vector<int> backups(static_cast<std::size_t>(num_sites), 0);
  if (dr) {
    if (static_cast<int>(plan.backup_servers.size()) != num_sites) {
      problems.push_back("backup server vector does not cover every site");
    } else {
      backups = plan.backup_servers;
      bool assignments_ok = true;
      for (int i = 0; i < num_groups; ++i) {
        const int a = plan.primary[static_cast<std::size_t>(i)];
        const int b = plan.secondary[static_cast<std::size_t>(i)];
        if (a < 0 || a >= num_sites || b < 0 || b >= num_sites || a == b) {
          assignments_ok = false;
        }
      }
      if (assignments_ok) {
        const auto required = required_backup_servers(instance, plan.primary,
                                                      plan.secondary);
        for (int j = 0; j < num_sites; ++j) {
          if (backups[static_cast<std::size_t>(j)] <
              required[static_cast<std::size_t>(j)]) {
            problems.push_back(
                "site '" + instance.sites[static_cast<std::size_t>(j)].name +
                "' under-provisions backup servers (" +
                std::to_string(backups[static_cast<std::size_t>(j)]) + " < " +
                std::to_string(required[static_cast<std::size_t>(j)]) + ")");
          }
        }
      }
    }
  }

  for (int j = 0; j < num_sites; ++j) {
    const auto& site = instance.sites[static_cast<std::size_t>(j)];
    const long long occupied =
        primary_servers[static_cast<std::size_t>(j)] +
        (dr && static_cast<int>(backups.size()) == num_sites
             ? backups[static_cast<std::size_t>(j)]
             : 0);
    if (occupied > site.capacity_servers) {
      problems.push_back("site '" + site.name + "' over capacity (" +
                         std::to_string(occupied) + " > " +
                         std::to_string(site.capacity_servers) + ")");
    }
  }

  for (const auto& sep : instance.separations) {
    if (sep.group_a < num_groups && sep.group_b < num_groups &&
        plan.primary[static_cast<std::size_t>(sep.group_a)] ==
            plan.primary[static_cast<std::size_t>(sep.group_b)]) {
      problems.push_back(
          "groups '" +
          instance.groups[static_cast<std::size_t>(sep.group_a)].name +
          "' and '" +
          instance.groups[static_cast<std::size_t>(sep.group_b)].name +
          "' share a primary site despite a separation constraint");
    }
  }
  return problems;
}

}  // namespace etransform
