#include "model/entities.h"

#include <cmath>
#include <numeric>

#include "common/error.h"

namespace etransform {

double distance(const GeoPoint& a, const GeoPoint& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double ApplicationGroup::total_users() const {
  return std::accumulate(users_per_location.begin(), users_per_location.end(),
                         0.0);
}

int ConsolidationInstance::total_servers() const {
  int total = 0;
  for (const auto& group : groups) total += group.servers;
  return total;
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw InvalidInputError("instance validation: " + what);
}

}  // namespace

void validate_instance(const ConsolidationInstance& instance) {
  const int num_locations = instance.num_locations();
  const int num_sites = instance.num_sites();
  const int num_groups = instance.num_groups();
  if (num_sites == 0) fail("no target sites");
  if (num_groups == 0) fail("no application groups");

  for (const auto& group : instance.groups) {
    if (group.servers <= 0) {
      fail("group '" + group.name + "' has non-positive server count");
    }
    if (group.monthly_data_megabits < 0.0) {
      fail("group '" + group.name + "' has negative data volume");
    }
    if (static_cast<int>(group.users_per_location.size()) != num_locations) {
      fail("group '" + group.name + "' user vector does not match locations");
    }
    for (const double users : group.users_per_location) {
      if (users < 0.0 || std::isnan(users)) {
        fail("group '" + group.name + "' has negative user count");
      }
    }
    for (const int site : group.allowed_sites) {
      if (site < 0 || site >= num_sites) {
        fail("group '" + group.name + "' allows unknown site index " +
             std::to_string(site));
      }
    }
    if (group.pinned_site >= num_sites) {
      fail("group '" + group.name + "' pinned to unknown site");
    }
    if (group.pinned_site >= 0 && !group.allowed_sites.empty()) {
      bool allowed = false;
      for (const int site : group.allowed_sites) {
        allowed |= (site == group.pinned_site);
      }
      if (!allowed) {
        fail("group '" + group.name +
             "' pinned to a site outside its allowed set");
      }
    }
  }

  long long total_capacity = 0;
  for (const auto& site : instance.sites) {
    // Zero is a closed site: apply_period models a failed/maintenance site
    // by zeroing its capacity, and the scaled snapshot must still validate.
    if (site.capacity_servers < 0) {
      fail("site '" + site.name + "' has negative capacity");
    }
    total_capacity += site.capacity_servers;
  }
  if (total_capacity < instance.total_servers()) {
    throw InfeasibleError(
        "instance validation: total target capacity (" +
        std::to_string(total_capacity) + ") below total servers (" +
        std::to_string(instance.total_servers()) + ")");
  }

  if (static_cast<int>(instance.latency_ms.size()) != num_sites) {
    fail("latency matrix must have one row per site");
  }
  for (const auto& row : instance.latency_ms) {
    if (static_cast<int>(row.size()) != num_locations) {
      fail("latency matrix row does not match location count");
    }
    for (const double v : row) {
      if (v < 0.0 || std::isnan(v)) fail("negative latency entry");
    }
  }

  if (instance.use_vpn_links) {
    if (static_cast<int>(instance.vpn_link_monthly_cost.size()) != num_sites) {
      fail("VPN cost matrix must have one row per site");
    }
    for (const auto& row : instance.vpn_link_monthly_cost) {
      if (static_cast<int>(row.size()) != num_locations) {
        fail("VPN cost matrix row does not match location count");
      }
      for (const double v : row) {
        if (v < 0.0 || std::isnan(v)) fail("negative VPN link cost");
      }
    }
    if (instance.params.vpn_link_capacity_megabits <= 0.0) {
      fail("VPN link capacity must be positive");
    }
  }

  if (!instance.as_is_placement.empty()) {
    if (static_cast<int>(instance.as_is_placement.size()) != num_groups) {
      fail("as-is placement must cover every group");
    }
    const int num_centers = static_cast<int>(instance.as_is_centers.size());
    if (num_centers == 0) fail("as-is placement without as-is centers");
    for (const int center : instance.as_is_placement) {
      if (center < 0 || center >= num_centers) {
        fail("as-is placement references unknown center");
      }
    }
    if (!instance.as_is_latency_ms.empty()) {
      if (static_cast<int>(instance.as_is_latency_ms.size()) != num_centers) {
        fail("as-is latency matrix must have one row per as-is center");
      }
      for (const auto& row : instance.as_is_latency_ms) {
        if (static_cast<int>(row.size()) != num_locations) {
          fail("as-is latency row does not match location count");
        }
      }
    }
  }

  for (const auto& sep : instance.separations) {
    if (sep.group_a < 0 || sep.group_a >= num_groups || sep.group_b < 0 ||
        sep.group_b >= num_groups) {
      fail("separation constraint references unknown group");
    }
    if (sep.group_a == sep.group_b) {
      fail("separation constraint pairs a group with itself");
    }
  }

  if (instance.params.server_power_kw < 0.0 ||
      instance.params.servers_per_admin <= 0.0 ||
      instance.params.dr_server_cost < 0.0 ||
      instance.params.hours_per_month <= 0.0) {
    fail("cost parameters out of range");
  }

  // Every group must fit somewhere it is allowed.
  for (const auto& group : instance.groups) {
    bool fits = false;
    const auto allowed_at = [&](int j) {
      if (group.pinned_site >= 0) return j == group.pinned_site;
      if (group.allowed_sites.empty()) return true;
      for (const int site : group.allowed_sites) {
        if (site == j) return true;
      }
      return false;
    };
    for (int j = 0; j < num_sites; ++j) {
      if (allowed_at(j) &&
          instance.sites[static_cast<std::size_t>(j)].capacity_servers >=
              group.servers) {
        fits = true;
        break;
      }
    }
    if (!fits) {
      throw InfeasibleError("instance validation: group '" + group.name +
                            "' does not fit in any allowed site");
    }
  }
}

}  // namespace etransform
