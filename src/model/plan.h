// The "to-be" state: a consolidation (and optionally DR) plan plus its cost
// breakdown, and plan-level feasibility checking.
#pragma once

#include <string>
#include <vector>

#include "common/money.h"
#include "model/entities.h"

namespace etransform {

/// Monthly cost decomposition of a plan (or of the as-is state).
struct CostBreakdown {
  Money space = 0.0;
  Money power = 0.0;
  Money labor = 0.0;
  Money wan = 0.0;
  Money latency_penalty = 0.0;
  /// One-time purchase cost of DR backup servers (zeta * sum G_j).
  Money backup_capex = 0.0;
  /// Inter-period switching cost of a multi-period plan (migration rate *
  /// servers moved; see model/horizon.h). Always 0 for static plans.
  Money migration = 0.0;

  /// Everything except the latency penalty (the paper's bar charts show
  /// "Cost" and "Latency Penalty" stacked separately).
  [[nodiscard]] Money operational() const {
    return space + power + labor + wan + backup_capex + migration;
  }
  /// Grand total including penalties.
  [[nodiscard]] Money total() const {
    return operational() + latency_penalty;
  }
};

/// A consolidation plan: primary site per group, optional DR secondary site
/// per group, and backup server counts per site.
struct Plan {
  /// primary[i] = target site index of group i.
  std::vector<int> primary;
  /// secondary[i] = DR site of group i, or -1. Empty when DR is off.
  std::vector<int> secondary;
  /// backup_servers[j] = G_j, DR servers provisioned at site j. Empty when
  /// DR is off.
  std::vector<int> backup_servers;
  /// Exact cost under the instance's schedules (filled by CostModel).
  CostBreakdown cost;
  /// Number of (group, placement) pairs whose average latency incurs a
  /// nonzero penalty; DR plans count primary and secondary separately
  /// (matches Fig. 4(e)/6(e) accounting).
  int latency_violations = 0;
  /// Which algorithm produced the plan (for reports).
  std::string algorithm;

  [[nodiscard]] bool has_dr() const { return !secondary.empty(); }

  /// Distinct sites hosting at least one primary.
  [[nodiscard]] int sites_used() const;

  /// Total DR servers provisioned.
  [[nodiscard]] int total_backup_servers() const;
};

/// Checks structural feasibility of `plan` against `instance`: every group
/// placed at a valid, allowed site; primary != secondary; site capacity
/// covers primary servers plus provisioned backups; backup counts satisfy the
/// single-failure sharing law G_b >= max_a (servers with primary a and
/// secondary b); separation constraints hold. Returns a human-readable list
/// of violations (empty when feasible).
[[nodiscard]] std::vector<std::string> check_plan(
    const ConsolidationInstance& instance, const Plan& plan);

/// Computes the minimal per-site backup counts for the given primary /
/// secondary assignment under the paper's single-failure sharing law:
/// G_b = max_a sum_{i: primary=a, secondary=b} S_i.
[[nodiscard]] std::vector<int> required_backup_servers(
    const ConsolidationInstance& instance, const std::vector<int>& primary,
    const std::vector<int>& secondary);

/// Per-site backup counts under *dedicated* sizing (paper §IV-A: plans that
/// must survive multiple concurrent failures cannot share backups):
/// G_b = sum_{i: secondary=b} S_i.
[[nodiscard]] std::vector<int> dedicated_backup_servers(
    const ConsolidationInstance& instance, const std::vector<int>& primary,
    const std::vector<int>& secondary);

}  // namespace etransform
