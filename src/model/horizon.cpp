#include "model/horizon.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace etransform {

double PlanningHorizon::period_weight(int t) const {
  if (periods.empty()) return 1.0;
  const bool all_zero =
      std::all_of(periods.begin(), periods.end(),
                  [](const DemandPeriod& p) { return p.weight == 0.0; });
  if (all_zero) return 1.0 / static_cast<double>(periods.size());
  return periods[static_cast<std::size_t>(t)].weight;
}

double PlanningHorizon::multiplier(int t, int group) const {
  if (periods.empty()) return 1.0;
  const auto& period = periods[static_cast<std::size_t>(t)];
  if (!period.group_multipliers.empty()) {
    return period.group_multipliers[static_cast<std::size_t>(group)];
  }
  return period.multiplier;
}

std::string PlanningHorizon::period_name(int t) const {
  if (!periods.empty() &&
      !periods[static_cast<std::size_t>(t)].name.empty()) {
    return periods[static_cast<std::size_t>(t)].name;
  }
  std::string name = "p";
  name += std::to_string(t);
  return name;
}

PlanningHorizon PlanningHorizon::uniform(int num_periods,
                                         Money migration_cost_per_server) {
  PlanningHorizon horizon;
  horizon.migration_cost_per_server = migration_cost_per_server;
  horizon.periods.resize(static_cast<std::size_t>(std::max(0, num_periods)));
  return horizon;
}

int scaled_servers(int servers, double multiplier) {
  if (servers <= 0) return servers;
  const double scaled = std::ceil(static_cast<double>(servers) * multiplier -
                                  1e-9);
  return std::max(1, static_cast<int>(scaled));
}

ConsolidationInstance apply_period(const ConsolidationInstance& base,
                                   const PlanningHorizon& horizon, int t) {
  if (t < 0 || t >= horizon.num_periods()) {
    throw InvalidInputError("apply_period: period index out of range");
  }
  ConsolidationInstance scaled = base;
  if (horizon.is_static()) return scaled;
  scaled.name = base.name + "@" + horizon.period_name(t);
  for (int i = 0; i < base.num_groups(); ++i) {
    const double m = horizon.multiplier(t, i);
    auto& group = scaled.groups[static_cast<std::size_t>(i)];
    group.servers = scaled_servers(group.servers, m);
    group.monthly_data_megabits *= m;
    for (double& users : group.users_per_location) users *= m;
  }
  for (const int j : horizon.periods[static_cast<std::size_t>(t)].failed_sites)
  {
    scaled.sites[static_cast<std::size_t>(j)].capacity_servers = 0;
  }
  return scaled;
}

void validate_horizon(const ConsolidationInstance& base,
                      const PlanningHorizon& horizon) {
  if (horizon.is_static()) {
    if (horizon.migration_cost_per_server < 0.0) {
      throw InvalidInputError("horizon: negative migration cost");
    }
    return;
  }
  if (static_cast<int>(horizon.periods.size()) > kMaxHorizonPeriods) {
    throw InvalidInputError("horizon: more than " +
                            std::to_string(kMaxHorizonPeriods) + " periods");
  }
  if (horizon.migration_cost_per_server < 0.0) {
    throw InvalidInputError("horizon: negative migration cost");
  }
  bool any_weight = false;
  bool any_zero_weight = false;
  for (std::size_t t = 0; t < horizon.periods.size(); ++t) {
    const auto& period = horizon.periods[t];
    const std::string where = "horizon period " + std::to_string(t);
    if (!(period.weight >= 0.0) || !std::isfinite(period.weight)) {
      throw InvalidInputError(where + ": weight must be finite and >= 0");
    }
    (period.weight > 0.0 ? any_weight : any_zero_weight) = true;
    if (!period.group_multipliers.empty() &&
        static_cast<int>(period.group_multipliers.size()) !=
            base.num_groups()) {
      throw InvalidInputError(where + ": group_multipliers must have one "
                                      "entry per group");
    }
    const auto check_multiplier = [&](double m) {
      if (!(m > 0.0) || !std::isfinite(m)) {
        throw InvalidInputError(where + ": multipliers must be finite and "
                                        "> 0");
      }
    };
    check_multiplier(period.multiplier);
    for (const double m : period.group_multipliers) check_multiplier(m);
    for (const int j : period.failed_sites) {
      if (j < 0 || j >= base.num_sites()) {
        throw InvalidInputError(where + ": failed-site index out of range");
      }
    }
  }
  if (any_weight && any_zero_weight) {
    throw InvalidInputError(
        "horizon: period weights must be all zero (auto 1/T) or all > 0");
  }
}

std::string horizon_fingerprint(const PlanningHorizon& horizon) {
  if (horizon.is_static()) return std::string();
  const auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return std::string(buf);
  };
  std::string out = "T=" + std::to_string(horizon.periods.size()) +
                    ";mig=" + num(horizon.migration_cost_per_server);
  for (std::size_t t = 0; t < horizon.periods.size(); ++t) {
    const auto& period = horizon.periods[t];
    out += ";p" + std::to_string(t) + ":w=" + num(period.weight);
    if (period.group_multipliers.empty()) {
      out += ",m=" + num(period.multiplier);
    } else {
      out += ",gm=";
      for (std::size_t i = 0; i < period.group_multipliers.size(); ++i) {
        if (i > 0) out += "|";
        out += num(period.group_multipliers[i]);
      }
    }
    if (!period.failed_sites.empty()) {
      out += ",fail=";
      for (std::size_t i = 0; i < period.failed_sites.size(); ++i) {
        if (i > 0) out += "|";
        out += std::to_string(period.failed_sites[i]);
      }
    }
  }
  return out;
}

MultiPeriodPlan assemble_multi_period(const ConsolidationInstance& base,
                                      const PlanningHorizon& horizon,
                                      std::vector<Plan> period_plans,
                                      std::string algorithm) {
  if (static_cast<int>(period_plans.size()) != horizon.num_periods()) {
    throw InvalidInputError(
        "assemble_multi_period: plan count does not match horizon");
  }
  MultiPeriodPlan multi;
  multi.algorithm = std::move(algorithm);
  multi.periods = std::move(period_plans);
  for (int t = 0; t < horizon.num_periods(); ++t) {
    const double w = horizon.period_weight(t);
    const CostBreakdown& c =
        multi.periods[static_cast<std::size_t>(t)].cost;
    multi.cost.space += w * c.space;
    multi.cost.power += w * c.power;
    multi.cost.labor += w * c.labor;
    multi.cost.wan += w * c.wan;
    multi.cost.latency_penalty += w * c.latency_penalty;
    multi.cost.backup_capex += w * c.backup_capex;
    multi.cost.migration += w * c.migration;
    if (t == 0) continue;
    const auto& prev = multi.periods[static_cast<std::size_t>(t - 1)].primary;
    const auto& cur = multi.periods[static_cast<std::size_t>(t)].primary;
    for (int i = 0; i < base.num_groups(); ++i) {
      if (prev[static_cast<std::size_t>(i)] ==
          cur[static_cast<std::size_t>(i)]) {
        continue;
      }
      multi.total_moves += 1;
      multi.moved_servers += scaled_servers(
          base.groups[static_cast<std::size_t>(i)].servers,
          horizon.multiplier(t, i));
    }
  }
  multi.cost.migration += horizon.migration_cost_per_server *
                          static_cast<double>(multi.moved_servers);
  return multi;
}

}  // namespace etransform
