// Step-function price schedules (economies of scale).
//
// The paper (§III-B, citing Schoomer 1964) models every data-center cost rate
// as a step function of the quantity purchased: the unit price drops once the
// volume crosses a tier boundary, and the *new* price applies to all units
// ("under a volume pricing structure, the price per unit decreases as the
// quantity purchased increases"). A StepSchedule is that function; the MILP
// formulation linearizes it exactly with per-tier binaries, and the plan
// evaluator applies it directly.
#pragma once

#include <vector>

#include "common/money.h"

namespace etransform {

/// One pricing tier: `unit_price` applies while quantity <= `upto`.
struct PriceTier {
  /// Inclusive upper edge of this tier; the last tier may be infinite.
  double upto = 0.0;
  /// Price per unit when the purchased quantity falls in this tier.
  Money unit_price = 0.0;
};

/// A piecewise-constant unit-price schedule over quantity.
///
/// Invariants (checked on construction): at least one tier, strictly
/// increasing `upto`, non-negative prices, final tier covers +infinity.
class StepSchedule {
 public:
  /// Single-tier schedule: the same unit price at every volume.
  static StepSchedule flat(Money unit_price);

  /// Volume-discount schedule in the paper's parametrization: the unit price
  /// starts at `base_price` and decreases by `discount_per_tier` every
  /// `tier_size` units, for `num_tiers` tiers (the last tier extends to
  /// infinity). Prices are floored at zero. Throws InvalidInputError on
  /// non-positive tier_size or num_tiers < 1.
  static StepSchedule volume_discount(Money base_price, double tier_size,
                                      Money discount_per_tier, int num_tiers);

  /// Builds from explicit tiers. Throws InvalidInputError if the invariants
  /// fail; a final tier with a finite edge is extended to infinity at the
  /// same price.
  explicit StepSchedule(std::vector<PriceTier> tiers);

  /// Unit price at the given quantity (quantity < 0 is an error).
  [[nodiscard]] Money unit_price(double quantity) const;

  /// Total cost: unit_price(quantity) * quantity.
  [[nodiscard]] Money total_cost(double quantity) const;

  /// Tier list (ascending, last tier infinite).
  [[nodiscard]] const std::vector<PriceTier>& tiers() const { return tiers_; }

  /// True if every tier has the same price (no volume effects).
  [[nodiscard]] bool is_flat() const;

 private:
  std::vector<PriceTier> tiers_;
};

}  // namespace etransform
