// Domain entities: the "as-is" state specification of Table I plus the
// target-site description the planner consumes.
//
// A ConsolidationInstance is the full input to every planner and baseline:
// user locations, application groups (with traffic matrices, latency penalty
// functions, and placement constraints), target data-center sites (with
// capacity and the four cost schedules), the site->location latency matrix,
// optional per-link VPN lease prices, global cost parameters, and the current
// ("as-is") placement used as the cost baseline.
#pragma once

#include <string>
#include <vector>

#include "common/money.h"
#include "model/cost_schedule.h"
#include "model/latency.h"

namespace etransform {

/// A geographic point; distances feed the manual baseline's
/// "nearest data center" rule and distance-priced VPN links.
struct GeoPoint {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two points.
[[nodiscard]] double distance(const GeoPoint& a, const GeoPoint& b);

/// A location where users of the enterprise's applications sit (Fig. 2).
struct UserLocation {
  std::string name;
  GeoPoint position;
};

/// A candidate target data center (Table I: O_j, Q_j, W_j, E_j, T_j).
struct DataCenterSite {
  std::string name;
  GeoPoint position;
  /// Capacity in servers (O_j).
  int capacity_servers = 0;
  /// Space cost per server per month (Q_j), as a volume schedule.
  StepSchedule space_cost_per_server = StepSchedule::flat(0.0);
  /// WAN cost per megabit of monthly traffic (W_j), as a volume schedule.
  StepSchedule wan_cost_per_megabit = StepSchedule::flat(0.0);
  /// Electricity price per kWh (E_j).
  StepSchedule power_cost_per_kwh = StepSchedule::flat(0.0);
  /// Monthly fully-loaded cost per administrator (T_j).
  StepSchedule labor_cost_per_admin = StepSchedule::flat(0.0);
};

/// An application group (Table I: S_i, D_i, C_ir) with its constraints.
struct ApplicationGroup {
  std::string name;
  /// Number of physical servers the group runs on (S_i). The repacking
  /// preserves this count (paper §III-A: resources stay the same).
  int servers = 0;
  /// Monthly data exchanged with users, in megabits (D_i).
  double monthly_data_megabits = 0.0;
  /// Users per location (C_ir); must match the instance's location count.
  std::vector<double> users_per_location;
  /// Latency penalty step function (L_ij source).
  LatencyPenaltyFunction latency_penalty;
  /// If non-empty, the group may only be placed at these site indices
  /// (environmental / legal constraints, §I).
  std::vector<int> allowed_sites;
  /// If >= 0, the group is pinned to this site (admin iterative interface).
  int pinned_site = -1;

  /// Total users across all locations.
  [[nodiscard]] double total_users() const;
};

/// Global cost parameters (paper §III-B and §VI-B).
struct CostParameters {
  /// Average power draw per server in kilowatts (alpha; paper: 300-400 W).
  double server_power_kw = 0.35;
  /// Servers one administrator can handle (beta; paper: 130).
  double servers_per_admin = 130.0;
  /// Capacity of one dedicated VPN link in megabits/month (gamma).
  double vpn_link_capacity_megabits = 1.0e6;
  /// One-time cost of a backup (DR) server (zeta; paper: $1000).
  Money dr_server_cost = 1000.0;
  /// Hours per month for kWh conversion.
  double hours_per_month = 730.0;
};

/// A data center in the current estate, with its own (typically
/// undiscounted) cost rates; used to price the "as-is" state.
struct AsIsDataCenter {
  std::string name;
  GeoPoint position;
  int servers = 0;
  Money space_cost_per_server = 0.0;
  Money wan_cost_per_megabit = 0.0;
  Money power_cost_per_kwh = 0.0;
  Money labor_cost_per_admin = 0.0;
};

/// Pairwise group separation constraint (shared-risk, §I): the two groups
/// must not share a primary data center.
struct SeparationConstraint {
  int group_a = -1;
  int group_b = -1;
};

/// The complete planner input: "as-is" state + target topology.
struct ConsolidationInstance {
  std::string name;

  std::vector<UserLocation> locations;
  std::vector<ApplicationGroup> groups;
  std::vector<DataCenterSite> sites;

  /// latency_ms[j][r]: latency from target site j to user location r.
  std::vector<std::vector<double>> latency_ms;

  /// Optional dedicated-VPN mode (paper §III-B): monthly lease price of one
  /// link between site j and location r. When non-empty the WAN cost uses the
  /// VPN-link formula instead of D_i * W_j.
  std::vector<std::vector<Money>> vpn_link_monthly_cost;
  bool use_vpn_links = false;

  CostParameters params;

  /// Current estate, for as-is costing and the manual baseline's proximity
  /// rule. as_is_placement[i] is the index into as_is_centers for group i.
  std::vector<AsIsDataCenter> as_is_centers;
  std::vector<int> as_is_placement;
  /// as_is_latency_ms[d][r]: latency from as-is center d to location r.
  std::vector<std::vector<double>> as_is_latency_ms;

  /// Pairwise shared-risk separation constraints.
  std::vector<SeparationConstraint> separations;

  [[nodiscard]] int num_groups() const {
    return static_cast<int>(groups.size());
  }
  [[nodiscard]] int num_sites() const { return static_cast<int>(sites.size()); }
  [[nodiscard]] int num_locations() const {
    return static_cast<int>(locations.size());
  }
  /// Total servers across all application groups.
  [[nodiscard]] int total_servers() const;
};

/// Throws InvalidInputError describing the first inconsistency found:
/// mismatched matrix shapes, negative counts, out-of-range placement or
/// constraint indices, capacity shortfall (total capacity < total servers),
/// or a group too large for every site it is allowed at.
void validate_instance(const ConsolidationInstance& instance);

}  // namespace etransform
