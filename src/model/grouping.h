// Application grouping from an inter-application traffic matrix.
//
// The paper assumes the estate arrives pre-clustered into application groups
// (§II): "applications that either interact closely with one another to
// perform a business process or have common data that they access" must stay
// together, because splitting them turns LAN traffic into WAN traffic. Real
// estates arrive as flat application inventories plus a traffic matrix; this
// module performs that clustering — union-find over all application pairs
// whose traffic meets a threshold — and aggregates each cluster into one
// ApplicationGroup (servers and user vectors summed, external data summed,
// latency requirements merged pointwise-max so the group inherits its most
// demanding member's SLA).
#pragma once

#include <string>
#include <vector>

#include "model/entities.h"

namespace etransform {

/// One application before grouping.
struct ApplicationSpec {
  std::string name;
  int servers = 0;
  /// Monthly data exchanged with *users* in megabits (traffic to other
  /// applications lives in the traffic matrix instead).
  double monthly_data_megabits = 0.0;
  std::vector<double> users_per_location;
  LatencyPenaltyFunction latency_penalty;
};

/// Clustering knobs.
struct GroupingOptions {
  /// Applications exchanging at least this much monthly traffic (megabits)
  /// are placed in the same group.
  double traffic_threshold_megabits = 1.0;
  /// If positive, throw InfeasibleError when a cluster exceeds this many
  /// servers (the paper defers to Hajjat et al. [3] for splitting oversized
  /// groups; we surface the condition instead of silently splitting).
  int max_group_servers = 0;
};

/// Result of grouping: the groups plus the cluster id of every application.
struct GroupingResult {
  std::vector<ApplicationGroup> groups;
  /// membership[app] = index into `groups`.
  std::vector<int> membership;
  /// Monthly intra-group traffic (megabits) that consolidation keeps on the
  /// LAN — the quantity the associativity constraint protects.
  double intra_group_traffic_megabits = 0.0;
};

/// Clusters `applications` using `traffic[i][j]` (symmetric, megabits per
/// month; the diagonal is ignored). Throws InvalidInputError on shape
/// errors, InfeasibleError when a cluster exceeds max_group_servers.
[[nodiscard]] GroupingResult build_application_groups(
    const std::vector<ApplicationSpec>& applications,
    const std::vector<std::vector<double>>& traffic,
    const GroupingOptions& options = {});

/// Pointwise maximum of two latency penalty functions: the merged function
/// charges, at every latency, the larger of the two penalties (a group must
/// honor its most demanding member). Exposed for testing.
[[nodiscard]] LatencyPenaltyFunction merge_latency_penalties(
    const LatencyPenaltyFunction& a, const LatencyPenaltyFunction& b);

}  // namespace etransform
