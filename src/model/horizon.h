// Multi-period planning: the demand timeline a time-expanded plan covers.
//
// The paper plans one static to-be state from a single demand snapshot. A
// PlanningHorizon generalizes that input: an ordered list of demand periods,
// each scaling the snapshot's traffic (per group or uniformly) and optionally
// failing sites, plus a switching cost charged per server moved between
// consecutive periods ("Optimal Algorithms for Right-Sizing Data Centers",
// Albers & Quedenfeld). An empty horizon means the classic static problem;
// the planner treats horizon semantics as:
//
//   total cost = sum_t weight_t * monthly_cost(plan_t under demand_t)
//              + migration_cost_per_server * servers moved at each t -> t+1
//
// weight_t is the period's duration in months (all-zero weights default to
// 1/T each, so a horizon-of-1 with multiplier 1 totals exactly the static
// monthly cost — the differential-test contract).
#pragma once

#include <string>
#include <vector>

#include "common/money.h"
#include "model/entities.h"
#include "model/plan.h"

namespace etransform {

/// One demand period of the horizon.
struct DemandPeriod {
  /// Display name; empty defaults to "p<t>".
  std::string name;
  /// Duration of the period in months. All-zero weights mean 1/T each.
  double weight = 0.0;
  /// Uniform traffic multiplier applied to every group's servers, monthly
  /// data, and user counts. Must be > 0.
  double multiplier = 1.0;
  /// Per-group multiplier override (size = num_groups); empty falls back to
  /// the uniform `multiplier`.
  std::vector<double> group_multipliers;
  /// Sites unavailable this period (capacity forced to 0) — site-failure /
  /// maintenance-window scenarios.
  std::vector<int> failed_sites;
};

/// The demand timeline plus the inter-period switching cost.
struct PlanningHorizon {
  /// Ordered demand periods. Empty = the classic static single snapshot.
  std::vector<DemandPeriod> periods;
  /// One-time cost per server moved between consecutive periods.
  Money migration_cost_per_server = 0.0;

  [[nodiscard]] bool is_static() const { return periods.empty(); }
  [[nodiscard]] int num_periods() const {
    return periods.empty() ? 1 : static_cast<int>(periods.size());
  }
  /// Resolved duration of period t in months (auto 1/T when all zero).
  [[nodiscard]] double period_weight(int t) const;
  /// Effective traffic multiplier of group `group` in period t.
  [[nodiscard]] double multiplier(int t, int group) const;
  /// Display name of period t ("p<t>" when unnamed).
  [[nodiscard]] std::string period_name(int t) const;

  /// T equal unit periods at multiplier 1 — the trivial horizon.
  [[nodiscard]] static PlanningHorizon uniform(
      int num_periods, Money migration_cost_per_server = 0.0);
};

/// Demand-scaled server count: ceil(servers * multiplier), at least 1 for a
/// nonempty group (a group stays placed even in its trough).
[[nodiscard]] int scaled_servers(int servers, double multiplier);

/// Materializes the instance as period t sees it: group servers / monthly
/// data / user counts scaled by the period multiplier, failed sites'
/// capacity zeroed, name suffixed with the period name. The result is a
/// self-contained static instance (feed it to CostModel for per-period
/// pricing).
[[nodiscard]] ConsolidationInstance apply_period(
    const ConsolidationInstance& base, const PlanningHorizon& horizon, int t);

/// Throws InvalidInputError on an inconsistent horizon: non-positive
/// multipliers, per-group multiplier vectors of the wrong length, mixed
/// zero/nonzero weights, out-of-range failed-site indices, a negative
/// migration rate, or more than kMaxHorizonPeriods periods.
void validate_horizon(const ConsolidationInstance& base,
                      const PlanningHorizon& horizon);

/// Upper bound on periods per horizon (bounds daemon memory and MILP size).
inline constexpr int kMaxHorizonPeriods = 64;

/// Canonical one-line encoding of the horizon (period weights, multipliers,
/// failures, migration rate). Feeds the daemon's options_fingerprint so the
/// result cache never serves a static result for a multi-period request (or
/// vice versa), and labels sweep scenarios. Empty string for a static
/// horizon.
[[nodiscard]] std::string horizon_fingerprint(const PlanningHorizon& horizon);

/// A plan per period plus horizon-level totals.
struct MultiPeriodPlan {
  /// periods[t] is priced at period t's demand (monthly rates).
  std::vector<Plan> periods;
  /// Weighted horizon totals: sum_t weight_t * periods[t].cost, plus the
  /// migration term in cost.migration.
  CostBreakdown cost;
  /// Group relocations across consecutive periods.
  int total_moves = 0;
  /// Servers relocated (counted at the arrival period's scaled size).
  long long moved_servers = 0;
  std::string algorithm;

  [[nodiscard]] bool empty() const { return periods.empty(); }
};

/// Builds the horizon-level totals from per-period plans that are already
/// priced: weighted cost sums, move counts, and the migration charge
/// (rate * arrival-period servers per relocated group). Shared by the MILP
/// decode, the heuristic smoother, and the online baselines so every
/// competitor is totalled by the same rule. Throws InvalidInputError when
/// the plan count does not match the horizon.
[[nodiscard]] MultiPeriodPlan assemble_multi_period(
    const ConsolidationInstance& base, const PlanningHorizon& horizon,
    std::vector<Plan> period_plans, std::string algorithm);

}  // namespace etransform
