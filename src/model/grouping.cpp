#include "model/grouping.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace etransform {

namespace {

/// Union-find with path compression.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

LatencyPenaltyFunction merge_latency_penalties(
    const LatencyPenaltyFunction& a, const LatencyPenaltyFunction& b) {
  if (a.is_insensitive()) return b;
  if (b.is_insensitive()) return a;
  // Candidate thresholds: union of both step sets. At each threshold the
  // merged per-user penalty is max(a, b) evaluated just past it.
  std::vector<double> thresholds;
  for (const auto& step : a.steps()) thresholds.push_back(step.threshold_ms);
  for (const auto& step : b.steps()) thresholds.push_back(step.threshold_ms);
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());
  std::vector<LatencyPenaltyStep> merged;
  Money previous = 0.0;
  for (const double threshold : thresholds) {
    // Evaluate epsilon past the threshold; steps use strict inequality.
    const double probe = threshold + 1e-9;
    const Money penalty =
        std::max(a.penalty_per_user(probe), b.penalty_per_user(probe));
    if (penalty > previous) {
      merged.push_back(LatencyPenaltyStep{threshold, penalty});
      previous = penalty;
    }
  }
  return LatencyPenaltyFunction(std::move(merged));
}

GroupingResult build_application_groups(
    const std::vector<ApplicationSpec>& applications,
    const std::vector<std::vector<double>>& traffic,
    const GroupingOptions& options) {
  const std::size_t n = applications.size();
  if (n == 0) throw InvalidInputError("grouping: no applications");
  if (traffic.size() != n) {
    throw InvalidInputError("grouping: traffic matrix must be N x N");
  }
  const std::size_t locations = applications.front().users_per_location.size();
  for (const auto& app : applications) {
    if (app.servers <= 0) {
      throw InvalidInputError("grouping: application '" + app.name +
                              "' has non-positive server count");
    }
    if (app.users_per_location.size() != locations) {
      throw InvalidInputError(
          "grouping: inconsistent user-location vector for '" + app.name +
          "'");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (traffic[i].size() != n) {
      throw InvalidInputError("grouping: traffic matrix must be N x N");
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (traffic[i][j] < 0.0) {
        throw InvalidInputError("grouping: negative traffic entry");
      }
    }
  }
  if (options.traffic_threshold_megabits <= 0.0) {
    throw InvalidInputError("grouping: threshold must be positive");
  }

  DisjointSets sets(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Treat the matrix as symmetric: either direction counts.
      const double exchanged = traffic[i][j] + traffic[j][i];
      if (exchanged >= options.traffic_threshold_megabits) {
        sets.unite(i, j);
      }
    }
  }

  GroupingResult result;
  result.membership.assign(n, -1);
  std::vector<int> group_of_root(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = sets.find(i);
    if (group_of_root[root] < 0) {
      group_of_root[root] = static_cast<int>(result.groups.size());
      ApplicationGroup group;
      group.users_per_location.assign(locations, 0.0);
      result.groups.push_back(std::move(group));
    }
    const int g = group_of_root[root];
    result.membership[i] = g;
    auto& group = result.groups[static_cast<std::size_t>(g)];
    const auto& app = applications[i];
    if (group.name.empty()) {
      group.name = app.name;
    } else {
      group.name += "+" + app.name;
    }
    group.servers += app.servers;
    group.monthly_data_megabits += app.monthly_data_megabits;
    for (std::size_t r = 0; r < locations; ++r) {
      group.users_per_location[r] += app.users_per_location[r];
    }
    group.latency_penalty =
        merge_latency_penalties(group.latency_penalty, app.latency_penalty);
  }

  // Intra-group traffic: what the associativity constraint keeps local.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (result.membership[i] == result.membership[j]) {
        result.intra_group_traffic_megabits += traffic[i][j] + traffic[j][i];
      }
    }
  }

  if (options.max_group_servers > 0) {
    for (const auto& group : result.groups) {
      if (group.servers > options.max_group_servers) {
        throw InfeasibleError(
            "grouping: group '" + group.name + "' needs " +
            std::to_string(group.servers) +
            " servers, above the configured maximum of " +
            std::to_string(options.max_group_servers) +
            " (split oversized groups first, cf. Hajjat et al.)");
      }
    }
  }
  return result;
}

}  // namespace etransform
