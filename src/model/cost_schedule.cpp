#include "model/cost_schedule.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace etransform {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

StepSchedule StepSchedule::flat(Money unit_price) {
  return StepSchedule({PriceTier{kInf, unit_price}});
}

StepSchedule StepSchedule::volume_discount(Money base_price, double tier_size,
                                           Money discount_per_tier,
                                           int num_tiers) {
  if (tier_size <= 0.0) {
    throw InvalidInputError("volume_discount: tier_size must be positive");
  }
  if (num_tiers < 1) {
    throw InvalidInputError("volume_discount: need at least one tier");
  }
  std::vector<PriceTier> tiers;
  tiers.reserve(static_cast<std::size_t>(num_tiers));
  for (int k = 0; k < num_tiers; ++k) {
    const double edge = (k == num_tiers - 1) ? kInf : tier_size * (k + 1);
    const Money price = std::max(0.0, base_price - k * discount_per_tier);
    tiers.push_back(PriceTier{edge, price});
  }
  return StepSchedule(std::move(tiers));
}

StepSchedule::StepSchedule(std::vector<PriceTier> tiers)
    : tiers_(std::move(tiers)) {
  if (tiers_.empty()) {
    throw InvalidInputError("StepSchedule: need at least one tier");
  }
  double previous = 0.0;
  for (const auto& tier : tiers_) {
    if (std::isnan(tier.upto) || tier.upto <= previous) {
      throw InvalidInputError(
          "StepSchedule: tier edges must be strictly increasing and positive");
    }
    if (tier.unit_price < 0.0 || std::isnan(tier.unit_price)) {
      throw InvalidInputError("StepSchedule: negative or NaN unit price");
    }
    previous = tier.upto;
  }
  if (std::isfinite(tiers_.back().upto)) {
    tiers_.push_back(PriceTier{kInf, tiers_.back().unit_price});
  }
}

Money StepSchedule::unit_price(double quantity) const {
  if (quantity < 0.0 || std::isnan(quantity)) {
    throw InvalidInputError("StepSchedule: negative quantity");
  }
  for (const auto& tier : tiers_) {
    if (quantity <= tier.upto) return tier.unit_price;
  }
  return tiers_.back().unit_price;  // unreachable: last tier is infinite
}

Money StepSchedule::total_cost(double quantity) const {
  return unit_price(quantity) * quantity;
}

bool StepSchedule::is_flat() const {
  return std::all_of(tiers_.begin(), tiers_.end(), [&](const PriceTier& t) {
    return t.unit_price == tiers_.front().unit_price;
  });
}

}  // namespace etransform
