#include "model/latency.h"

#include <cmath>

#include "common/error.h"

namespace etransform {

LatencyPenaltyFunction LatencyPenaltyFunction::single_step(
    double threshold_ms, Money penalty_per_user) {
  return LatencyPenaltyFunction({{threshold_ms, penalty_per_user}});
}

LatencyPenaltyFunction::LatencyPenaltyFunction(
    std::vector<LatencyPenaltyStep> steps)
    : steps_(std::move(steps)) {
  double previous_threshold = -1.0;
  Money previous_penalty = 0.0;
  for (const auto& step : steps_) {
    if (std::isnan(step.threshold_ms) || step.threshold_ms < 0.0 ||
        step.threshold_ms <= previous_threshold) {
      throw InvalidInputError(
          "LatencyPenaltyFunction: thresholds must be non-negative and "
          "strictly increasing");
    }
    if (step.penalty_per_user < previous_penalty || step.penalty_per_user < 0) {
      throw InvalidInputError(
          "LatencyPenaltyFunction: penalties must be non-negative and "
          "non-decreasing");
    }
    previous_threshold = step.threshold_ms;
    previous_penalty = step.penalty_per_user;
  }
}

Money LatencyPenaltyFunction::penalty_per_user(double avg_latency_ms) const {
  Money penalty = 0.0;
  for (const auto& step : steps_) {
    if (avg_latency_ms > step.threshold_ms) penalty = step.penalty_per_user;
  }
  return penalty;
}

bool LatencyPenaltyFunction::violated_at(double avg_latency_ms) const {
  return penalty_per_user(avg_latency_ms) > 0.0;
}

double weighted_average_latency(
    const std::vector<double>& latency_to_location,
    const std::vector<double>& users) {
  if (latency_to_location.size() != users.size()) {
    throw InvalidInputError(
        "weighted_average_latency: latency/user vector size mismatch");
  }
  double total_users = 0.0;
  double weighted = 0.0;
  for (std::size_t r = 0; r < users.size(); ++r) {
    if (users[r] < 0.0) {
      throw InvalidInputError("weighted_average_latency: negative user count");
    }
    total_users += users[r];
    weighted += users[r] * latency_to_location[r];
  }
  if (total_users == 0.0) return 0.0;
  return weighted / total_users;
}

}  // namespace etransform
