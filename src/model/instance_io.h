// Text serialization of ConsolidationInstance.
//
// A line-oriented format (the ".etf" file) so estates can be authored in a
// spreadsheet-adjacent workflow, versioned, and fed to the CLI planner —
// the "USER INPUT" box of the paper's Fig. 5. Sections:
//
//   etransform-instance v1
//   name <string>
//   params <power_kw> <servers_per_admin> <vpn_capacity_mb> <dr_cost> <hours>
//   location <name> <x> <y>
//   site <name> <x> <y> <capacity>
//   site.space <site> <upto|inf> <price> [<upto|inf> <price> ...]
//   site.power <site> ...        site.labor <site> ...   site.wan <site> ...
//   site.latency <site> <ms per location...>
//   site.vpn <site> <monthly link cost per location...>
//   group <name> <servers> <data_mb> <users per location...>
//   group.penalty <group> <threshold_ms> <per_user> [...more steps]
//   group.allow <group> <site> [<site> ...]
//   group.pin <group> <site>
//   separate <groupA> <groupB>
//   asis <name> <x> <y> <space> <wan> <power> <labor>
//   asis.latency <asis> <ms per location...>
//   place <group> <asis>
//   end
//
// '#' starts a comment. Entities are referenced by name; definitions must
// precede references. write_instance -> parse_instance is a fixed point
// (tested), and parse always returns a validated instance.
//
// Multi-period demand timelines (model/horizon.h) have a companion
// line-oriented format (the ".etfh" file, CLI --traffic-curve):
//
//   etransform-horizon v1
//   migration_cost <per-server rate>
//   period <name> <weight_months|0> <multiplier>
//   period.group_multipliers <period> <m per group...>
//   period.fail <period> <site name> [<site name> ...]
//   end
//
// Horizons reference the instance they scale: site names resolve against it
// and per-group multiplier rows must match its group count, so parsing takes
// the instance.
#pragma once

#include <iosfwd>
#include <string>

#include "model/entities.h"
#include "model/horizon.h"

namespace etransform {

/// Serializes `instance` (validated first; throws on malformed input).
[[nodiscard]] std::string write_instance(const ConsolidationInstance& instance);
void write_instance(const ConsolidationInstance& instance, std::ostream& out);

/// Parses the .etf format. Throws ParseError with a line number on
/// malformed text, and InvalidInputError/InfeasibleError when the parsed
/// instance fails validation.
[[nodiscard]] ConsolidationInstance parse_instance(const std::string& text);
[[nodiscard]] ConsolidationInstance parse_instance(std::istream& in);

/// Serializes `horizon` in the .etfh format (validated against `instance`
/// first; failed sites are written by name).
[[nodiscard]] std::string write_horizon(const PlanningHorizon& horizon,
                                        const ConsolidationInstance& instance);

/// Parses the .etfh format against `instance` (site-name resolution and
/// group-count checks). Throws ParseError with a line number on malformed
/// text and InvalidInputError when the horizon fails validation.
[[nodiscard]] PlanningHorizon parse_horizon(
    const std::string& text, const ConsolidationInstance& instance);

}  // namespace etransform
