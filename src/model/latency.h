// Latency penalty functions (paper §III-B).
//
// Each application group carries a step function mapping the user-perceived
// average latency to a dollar penalty per user per month; the planner folds
// the penalty into the placement coefficient L_ij. The paper's running
// example — "$100 per user if the average latency exceeds 10 ms" — is the
// single-step special case.
#pragma once

#include <vector>

#include "common/money.h"

namespace etransform {

/// One step of a latency penalty function: the per-user penalty charged when
/// the average latency strictly exceeds `threshold_ms`.
struct LatencyPenaltyStep {
  double threshold_ms = 0.0;
  Money penalty_per_user = 0.0;
};

/// Piecewise-constant per-user penalty as a function of average latency.
/// Steps must have strictly increasing thresholds and non-decreasing
/// penalties; with no steps the group is latency-insensitive.
class LatencyPenaltyFunction {
 public:
  /// No penalty at any latency.
  LatencyPenaltyFunction() = default;

  /// Single step: `penalty_per_user` beyond `threshold_ms`.
  static LatencyPenaltyFunction single_step(double threshold_ms,
                                            Money penalty_per_user);

  /// Multi-step function. Throws InvalidInputError if thresholds are not
  /// strictly increasing or penalties are negative/decreasing.
  explicit LatencyPenaltyFunction(std::vector<LatencyPenaltyStep> steps);

  /// Per-user penalty at the given average latency: the penalty of the
  /// highest step whose threshold is strictly below `avg_latency_ms`.
  [[nodiscard]] Money penalty_per_user(double avg_latency_ms) const;

  /// True if the given latency incurs a nonzero penalty (a "latency
  /// violation" in the paper's Fig. 4(e)/6(e) accounting).
  [[nodiscard]] bool violated_at(double avg_latency_ms) const;

  /// True if this group never pays a latency penalty.
  [[nodiscard]] bool is_insensitive() const { return steps_.empty(); }

  [[nodiscard]] const std::vector<LatencyPenaltyStep>& steps() const {
    return steps_;
  }

 private:
  std::vector<LatencyPenaltyStep> steps_;
};

/// User-count-weighted average latency of placing a group at a site.
/// `latency_to_location[r]` is the site->location latency; `users[r]` the
/// group's users at location r. Returns 0 for a group with no users.
[[nodiscard]] double weighted_average_latency(
    const std::vector<double>& latency_to_location,
    const std::vector<double>& users);

}  // namespace etransform
