#include "lp/lp_engine.h"

#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "lp/simplex_core.h"
#include "telemetry/metrics.h"

namespace etransform::lp {

LpEngine::LpEngine(SimplexOptions options) : options_(options) {}

LpSolution LpEngine::solve(const Model& model, SolveContext& ctx) const {
  std::vector<double> lower(static_cast<std::size_t>(model.num_variables()));
  std::vector<double> upper(static_cast<std::size_t>(model.num_variables()));
  for (int j = 0; j < model.num_variables(); ++j) {
    lower[static_cast<std::size_t>(j)] = model.variable(j).lower;
    upper[static_cast<std::size_t>(j)] = model.variable(j).upper;
  }
  return solve(model, lower, upper, ctx);
}

LpSolution LpEngine::solve(const Model& model, const std::vector<double>& lower,
                           const std::vector<double>& upper,
                           SolveContext& ctx) const {
  const PreparedLp prep(model);
  return solve(prep, lower, upper, ctx);
}

LpSolution LpEngine::solve(const PreparedLp& prep,
                           const std::vector<double>& lower,
                           const std::vector<double>& upper, SolveContext& ctx,
                           const LpStartBasis& start) const {
  const Model& model = *prep.model;
  if (lower.size() != static_cast<std::size_t>(prep.num_vars) ||
      upper.size() != static_cast<std::size_t>(prep.num_vars)) {
    throw InvalidInputError("solve: bound override size mismatch");
  }
  SolveScope scope(ctx, "simplex");
  scope.stats().add("calls", 1.0);
  LpSolution solution;
  if (prep.trivially_infeasible) {
    solution.status = SolveStatus::kInfeasible;
    ET_LOG(kDebug) << "simplex: trivially infeasible ("
                   << prep.infeasibility_note << ")";
    return solution;
  }

  detail::RevisedSimplex core(prep, options_, ctx);
  if (!core.set_bounds(lower, upper)) {
    solution.status = SolveStatus::kInfeasible;
    ET_LOG(kDebug) << "simplex: trivially infeasible (lower > upper)";
    return solution;
  }
  // Algorithm selection. kAuto only spends the dual-feasibility check when
  // the caller advertises a reoptimization start; kDual always attempts it
  // (even the cold slack basis is dual-feasible when no reduced cost is
  // attractive); kPrimal never does.
  bool try_dual = false;
  switch (options_.mode) {
    case SolveMode::kPrimal: break;
    case SolveMode::kDual: try_dual = true; break;
    case SolveMode::kAuto:
      try_dual = start.snapshot != nullptr &&
                 start.origin != LpStartBasis::Origin::kNone;
      break;
  }
  const SolveStatus status = core.run(start.snapshot, try_dual);
  solution.status = status;
  solution.iterations = core.iterations();
  solution.phase1_iterations = core.phase1_iterations();
  solution.refactorizations = core.refactorizations();
  solution.degenerate_pivots = core.degenerate_pivots();
  solution.warm_started = core.warm_started();
  solution.used_dual = core.used_dual();
  solution.dual_pivots = core.dual_pivots();
  solution.bound_flips = core.bound_flips();
  const BasisCounters& bc = core.basis_counters();
  SolveStats& stats = scope.stats();
  stats.add("pivots", solution.iterations);
  stats.add("phase1_pivots", solution.phase1_iterations);
  stats.add("dual_pivots", solution.dual_pivots);
  stats.add("bound_flips", solution.bound_flips);
  stats.add("dual_solves", solution.used_dual ? 1.0 : 0.0);
  stats.add("refactorizations", solution.refactorizations);
  stats.add("degenerate_pivots", solution.degenerate_pivots);
  stats.add("etas", static_cast<double>(bc.etas));
  stats.add("eta_entries", static_cast<double>(bc.eta_entries));
  stats.add("pricing_candidate_hits",
            static_cast<double>(core.candidate_hits()));
  stats.add("pricing_full_scans", static_cast<double>(core.full_scans()));
  stats.add("warm_starts", core.warm_started() ? 1.0 : 0.0);
  if (telemetry::MetricsRegistry* reg = ctx.metrics()) {
    reg->counter("etransform_simplex_solves_total",
                 "Simplex solve() calls observed by this registry")
        .increment();
    reg->counter("etransform_simplex_pivots_total",
                 "Simplex pivots across all solves")
        .add(solution.iterations);
    reg->counter("etransform_simplex_refactorizations_total",
                 "Basis refactorizations across all solves")
        .add(solution.refactorizations);
    reg->counter("etransform_simplex_dual_pivots_total",
                 "Dual-simplex pivots across all solves")
        .add(solution.dual_pivots);
    reg->counter("etransform_simplex_bound_flips_total",
                 "Dual ratio-test bound flips across all solves")
        .add(solution.bound_flips);
  }
  if (status != SolveStatus::kOptimal) return solution;

  solution.values.resize(static_cast<std::size_t>(prep.num_vars));
  for (int j = 0; j < prep.num_vars; ++j) {
    solution.values[static_cast<std::size_t>(j)] = core.column_value(j);
  }
  solution.objective = model.evaluate_objective(solution.values);

  const std::vector<double> y = core.row_duals();
  solution.duals.assign(static_cast<std::size_t>(model.num_constraints()),
                        0.0);
  for (int i = 0; i < model.num_constraints(); ++i) {
    const int r = prep.row_of_model_row[static_cast<std::size_t>(i)];
    if (r < 0) continue;
    solution.duals[static_cast<std::size_t>(i)] =
        prep.sense_sign * y[static_cast<std::size_t>(r)];
  }
  solution.basis = std::make_shared<BasisSnapshot>(core.snapshot());
  return solution;
}

BasisSnapshot extend_basis(const BasisSnapshot& old, int num_vars,
                           const std::vector<int>& old_row_of_new,
                           int new_rows, int new_cols) {
  BasisSnapshot snap;
  snap.basic_columns.assign(static_cast<std::size_t>(new_rows), -1);
  snap.column_status.assign(static_cast<std::size_t>(new_cols),
                            BasisVarStatus::kAtLower);
  for (int j = 0; j < num_vars; ++j) {
    snap.column_status[static_cast<std::size_t>(j)] =
        old.column_status[static_cast<std::size_t>(j)];
  }
  for (int r = 0; r < new_rows; ++r) {
    const int o = old_row_of_new[static_cast<std::size_t>(r)];
    if (o >= 0) {
      snap.column_status[static_cast<std::size_t>(num_vars + r)] =
          old.column_status[static_cast<std::size_t>(num_vars + o)];
    }
  }
  // Inverse row map: old slack columns must be re-indexed through it — a
  // slack basic in some *other* surviving row keeps that slack (re-homed to
  // the slack's new column index), not the row's own. Substituting the own
  // slack would change the basis matrix, which both risks singularity and
  // moves the duals the kRowsAdded contract promises to preserve.
  const int old_rows = static_cast<int>(old.basic_columns.size());
  std::vector<int> new_row_of_old(static_cast<std::size_t>(old_rows), -1);
  for (int r = 0; r < new_rows; ++r) {
    const int o = old_row_of_new[static_cast<std::size_t>(r)];
    if (o >= 0) new_row_of_old[static_cast<std::size_t>(o)] = r;
  }
  std::vector<char> used(static_cast<std::size_t>(new_cols), 0);
  for (int r = 0; r < new_rows; ++r) {
    const int o = old_row_of_new[static_cast<std::size_t>(r)];
    int b = num_vars + r;  // own slack: fresh rows, and the fallback
    if (o >= 0) {
      int ob = old.basic_columns[static_cast<std::size_t>(o)];
      if (ob >= num_vars) {
        const int slack_row =
            new_row_of_old[static_cast<std::size_t>(ob - num_vars)];
        ob = slack_row >= 0 ? num_vars + slack_row : -1;  // purged: fallback
      }
      if (ob >= 0 && !used[static_cast<std::size_t>(ob)]) b = ob;
    }
    if (used[static_cast<std::size_t>(b)]) b = num_vars + r;
    used[static_cast<std::size_t>(b)] = 1;
    snap.basic_columns[static_cast<std::size_t>(r)] = b;
  }
  for (int r = 0; r < new_rows; ++r) {
    snap.column_status[static_cast<std::size_t>(
        snap.basic_columns[static_cast<std::size_t>(r)])] =
        BasisVarStatus::kBasic;
  }
  // Model columns whose basic row was purged keep a stale kBasic marker;
  // apply_snapshot demotes those to a resting bound.
  return snap;
}

}  // namespace etransform::lp
