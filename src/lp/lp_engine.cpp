#include "lp/lp_engine.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "lp/basis.h"
#include "lp/simplex_core.h"
#include "telemetry/metrics.h"

namespace etransform::lp {

LpEngine::LpEngine(SimplexOptions options) : options_(options) {}

LpSolution LpEngine::solve(const Model& model, SolveContext& ctx) const {
  std::vector<double> lower(static_cast<std::size_t>(model.num_variables()));
  std::vector<double> upper(static_cast<std::size_t>(model.num_variables()));
  for (int j = 0; j < model.num_variables(); ++j) {
    lower[static_cast<std::size_t>(j)] = model.variable(j).lower;
    upper[static_cast<std::size_t>(j)] = model.variable(j).upper;
  }
  return solve(model, lower, upper, ctx);
}

LpSolution LpEngine::solve(const Model& model, const std::vector<double>& lower,
                           const std::vector<double>& upper,
                           SolveContext& ctx) const {
  const PreparedLp prep(model);
  return solve(prep, lower, upper, ctx);
}

LpSolution LpEngine::solve(const PreparedLp& prep,
                           const std::vector<double>& lower,
                           const std::vector<double>& upper, SolveContext& ctx,
                           const LpStartBasis& start) const {
  const Model& model = *prep.model;
  if (lower.size() != static_cast<std::size_t>(prep.num_vars) ||
      upper.size() != static_cast<std::size_t>(prep.num_vars)) {
    throw InvalidInputError("solve: bound override size mismatch");
  }
  SolveScope scope(ctx, "simplex");
  scope.stats().add("calls", 1.0);
  LpSolution solution;
  if (prep.trivially_infeasible) {
    solution.status = SolveStatus::kInfeasible;
    ET_LOG(kDebug) << "simplex: trivially infeasible ("
                   << prep.infeasibility_note << ")";
    return solution;
  }

  detail::RevisedSimplex core(prep, options_, ctx);
  if (!core.set_bounds(lower, upper)) {
    solution.status = SolveStatus::kInfeasible;
    ET_LOG(kDebug) << "simplex: trivially infeasible (lower > upper)";
    return solution;
  }
  // Algorithm selection. kAuto only spends the dual-feasibility check when
  // the caller advertises a reoptimization start; kDual always attempts it
  // (even the cold slack basis is dual-feasible when no reduced cost is
  // attractive); kPrimal never does.
  bool try_dual = false;
  switch (options_.mode) {
    case SolveMode::kPrimal: break;
    case SolveMode::kDual: try_dual = true; break;
    case SolveMode::kAuto:
      try_dual = start.snapshot != nullptr &&
                 start.origin != LpStartBasis::Origin::kNone;
      break;
  }
  const SolveStatus status = core.run(start.snapshot, try_dual);
  solution.status = status;
  solution.iterations = core.iterations();
  solution.phase1_iterations = core.phase1_iterations();
  solution.refactorizations = core.refactorizations();
  solution.degenerate_pivots = core.degenerate_pivots();
  solution.warm_started = core.warm_started();
  solution.used_dual = core.used_dual();
  solution.dual_pivots = core.dual_pivots();
  solution.bound_flips = core.bound_flips();
  const BasisCounters& bc = core.basis_counters();
  SolveStats& stats = scope.stats();
  stats.add("pivots", solution.iterations);
  stats.add("phase1_pivots", solution.phase1_iterations);
  stats.add("dual_pivots", solution.dual_pivots);
  stats.add("bound_flips", solution.bound_flips);
  stats.add("dual_solves", solution.used_dual ? 1.0 : 0.0);
  stats.add("refactorizations", solution.refactorizations);
  stats.add("degenerate_pivots", solution.degenerate_pivots);
  stats.add("etas", static_cast<double>(bc.etas));
  stats.add("eta_entries", static_cast<double>(bc.eta_entries));
  stats.add("pricing_candidate_hits",
            static_cast<double>(core.candidate_hits()));
  stats.add("pricing_full_scans", static_cast<double>(core.full_scans()));
  stats.add("warm_starts", core.warm_started() ? 1.0 : 0.0);
  if (telemetry::MetricsRegistry* reg = ctx.metrics()) {
    reg->counter("etransform_simplex_solves_total",
                 "Simplex solve() calls observed by this registry")
        .increment();
    reg->counter("etransform_simplex_pivots_total",
                 "Simplex pivots across all solves")
        .add(solution.iterations);
    reg->counter("etransform_simplex_refactorizations_total",
                 "Basis refactorizations across all solves")
        .add(solution.refactorizations);
    reg->counter("etransform_simplex_dual_pivots_total",
                 "Dual-simplex pivots across all solves")
        .add(solution.dual_pivots);
    reg->counter("etransform_simplex_bound_flips_total",
                 "Dual ratio-test bound flips across all solves")
        .add(solution.bound_flips);
  }
  if (status != SolveStatus::kOptimal) return solution;

  solution.values.resize(static_cast<std::size_t>(prep.num_vars));
  for (int j = 0; j < prep.num_vars; ++j) {
    solution.values[static_cast<std::size_t>(j)] = core.column_value(j);
  }
  solution.objective = model.evaluate_objective(solution.values);

  const std::vector<double> y = core.row_duals();
  solution.duals.assign(static_cast<std::size_t>(model.num_constraints()),
                        0.0);
  for (int i = 0; i < model.num_constraints(); ++i) {
    const int r = prep.row_of_model_row[static_cast<std::size_t>(i)];
    if (r < 0) continue;
    solution.duals[static_cast<std::size_t>(i)] =
        prep.sense_sign * y[static_cast<std::size_t>(r)];
  }
  solution.basis = std::make_shared<BasisSnapshot>(core.snapshot());
  return solution;
}

BasisSnapshot extend_basis(const BasisSnapshot& old, int num_vars,
                           const std::vector<int>& old_row_of_new,
                           int new_rows, int new_cols) {
  BasisSnapshot snap;
  snap.basic_columns.assign(static_cast<std::size_t>(new_rows), -1);
  snap.column_status.assign(static_cast<std::size_t>(new_cols),
                            BasisVarStatus::kAtLower);
  for (int j = 0; j < num_vars; ++j) {
    snap.column_status[static_cast<std::size_t>(j)] =
        old.column_status[static_cast<std::size_t>(j)];
  }
  for (int r = 0; r < new_rows; ++r) {
    const int o = old_row_of_new[static_cast<std::size_t>(r)];
    if (o >= 0) {
      snap.column_status[static_cast<std::size_t>(num_vars + r)] =
          old.column_status[static_cast<std::size_t>(num_vars + o)];
    }
  }
  // Inverse row map: old slack columns must be re-indexed through it — a
  // slack basic in some *other* surviving row keeps that slack (re-homed to
  // the slack's new column index), not the row's own. Substituting the own
  // slack would change the basis matrix, which both risks singularity and
  // moves the duals the kRowsAdded contract promises to preserve.
  const int old_rows = static_cast<int>(old.basic_columns.size());
  std::vector<int> new_row_of_old(static_cast<std::size_t>(old_rows), -1);
  for (int r = 0; r < new_rows; ++r) {
    const int o = old_row_of_new[static_cast<std::size_t>(r)];
    if (o >= 0) new_row_of_old[static_cast<std::size_t>(o)] = r;
  }
  std::vector<char> used(static_cast<std::size_t>(new_cols), 0);
  for (int r = 0; r < new_rows; ++r) {
    const int o = old_row_of_new[static_cast<std::size_t>(r)];
    int b = num_vars + r;  // own slack: fresh rows, and the fallback
    if (o >= 0) {
      int ob = old.basic_columns[static_cast<std::size_t>(o)];
      if (ob >= num_vars) {
        const int slack_row =
            new_row_of_old[static_cast<std::size_t>(ob - num_vars)];
        ob = slack_row >= 0 ? num_vars + slack_row : -1;  // purged: fallback
      }
      if (ob >= 0 && !used[static_cast<std::size_t>(ob)]) b = ob;
    }
    if (used[static_cast<std::size_t>(b)]) b = num_vars + r;
    used[static_cast<std::size_t>(b)] = 1;
    snap.basic_columns[static_cast<std::size_t>(r)] = b;
  }
  for (int r = 0; r < new_rows; ++r) {
    snap.column_status[static_cast<std::size_t>(
        snap.basic_columns[static_cast<std::size_t>(r)])] =
        BasisVarStatus::kBasic;
  }
  // Model columns whose basic row was purged keep a stale kBasic marker;
  // apply_snapshot demotes those to a resting bound.
  return snap;
}

NamedBasis name_basis(const Model& model, const BasisSnapshot& basis) {
  const PreparedLp prep(model);
  if (prep.trivially_infeasible ||
      basis.basic_columns.size() != static_cast<std::size_t>(prep.num_rows()) ||
      basis.column_status.size() !=
          static_cast<std::size_t>(prep.num_columns())) {
    throw InvalidInputError(
        "name_basis: snapshot does not match the model's standard form");
  }
  NamedBasis named;
  named.basis = basis;
  named.variables.reserve(static_cast<std::size_t>(prep.num_vars));
  for (int j = 0; j < prep.num_vars; ++j) {
    named.variables.push_back(model.variable(j).name);
  }
  named.rows.assign(static_cast<std::size_t>(prep.num_rows()), {});
  for (int i = 0; i < model.num_constraints(); ++i) {
    const int r = prep.row_of_model_row[static_cast<std::size_t>(i)];
    if (r >= 0) named.rows[static_cast<std::size_t>(r)] =
        model.constraint(i).name;
  }
  return named;
}

std::optional<BasisSnapshot> remap_basis(const NamedBasis& old_basis,
                                         const Model& target) {
  const int old_vars = static_cast<int>(old_basis.variables.size());
  const int old_rows = static_cast<int>(old_basis.rows.size());
  if (static_cast<int>(old_basis.basis.basic_columns.size()) != old_rows ||
      static_cast<int>(old_basis.basis.column_status.size()) !=
          old_vars + old_rows) {
    return std::nullopt;
  }
  const PreparedLp prep(target);
  if (prep.trivially_infeasible) return std::nullopt;
  const int num_vars = prep.num_vars;
  const int rows = prep.num_rows();
  const int cols = prep.num_columns();

  std::unordered_map<std::string, int> old_var;
  std::unordered_map<std::string, int> old_row;
  old_var.reserve(static_cast<std::size_t>(old_vars));
  old_row.reserve(static_cast<std::size_t>(old_rows));
  for (int j = 0; j < old_vars; ++j) old_var.emplace(old_basis.variables[j], j);
  for (int r = 0; r < old_rows; ++r) old_row.emplace(old_basis.rows[r], r);

  // Name-match target columns/rows against the old standard form:
  // new_col_of_old translates an old internal column index into the target
  // layout (-1 when the column vanished with the delta).
  std::vector<int> new_col_of_old(static_cast<std::size_t>(old_vars + old_rows),
                                  -1);
  std::vector<int> old_row_of_new(static_cast<std::size_t>(rows), -1);
  for (int j = 0; j < num_vars; ++j) {
    const auto it = old_var.find(target.variable(j).name);
    if (it != old_var.end()) {
      new_col_of_old[static_cast<std::size_t>(it->second)] = j;
    }
  }
  for (int i = 0; i < target.num_constraints(); ++i) {
    const int r = prep.row_of_model_row[static_cast<std::size_t>(i)];
    if (r < 0) continue;
    const auto it = old_row.find(target.constraint(i).name);
    if (it != old_row.end()) {
      old_row_of_new[static_cast<std::size_t>(r)] = it->second;
      new_col_of_old[static_cast<std::size_t>(old_vars + it->second)] =
          num_vars + r;
    }
  }

  BasisSnapshot snap;
  snap.basic_columns.assign(static_cast<std::size_t>(rows), -1);
  snap.column_status.assign(static_cast<std::size_t>(cols),
                            BasisVarStatus::kAtLower);
  // Nonbasic statuses carry over by name; stale kBasic markers on columns
  // whose basic row vanished are demoted when the snapshot is applied.
  for (int j = 0; j < num_vars; ++j) {
    const auto it = old_var.find(target.variable(j).name);
    if (it != old_var.end()) {
      snap.column_status[static_cast<std::size_t>(j)] =
          old_basis.basis.column_status[static_cast<std::size_t>(it->second)];
    }
  }
  for (int r = 0; r < rows; ++r) {
    const int o = old_row_of_new[static_cast<std::size_t>(r)];
    if (o >= 0) {
      snap.column_status[static_cast<std::size_t>(num_vars + r)] =
          old_basis.basis
              .column_status[static_cast<std::size_t>(old_vars + o)];
    }
  }
  // Surviving rows keep their old basic column when it too survived
  // (first-come-first-served on conflicts — an old slack basic in another
  // row can land on a column a later row also wants); rows whose basic
  // column vanished, lost the race, or are fresh take an unused slack,
  // preferring their own.
  std::vector<char> used(static_cast<std::size_t>(cols), 0);
  for (int r = 0; r < rows; ++r) {
    const int o = old_row_of_new[static_cast<std::size_t>(r)];
    if (o < 0) continue;
    const int ob = new_col_of_old[static_cast<std::size_t>(
        old_basis.basis.basic_columns[static_cast<std::size_t>(o)])];
    if (ob >= 0 && !used[static_cast<std::size_t>(ob)]) {
      snap.basic_columns[static_cast<std::size_t>(r)] = ob;
      used[static_cast<std::size_t>(ob)] = 1;
    }
  }
  for (int r = 0; r < rows; ++r) {
    const int own = num_vars + r;
    if (snap.basic_columns[static_cast<std::size_t>(r)] < 0 &&
        !used[static_cast<std::size_t>(own)]) {
      snap.basic_columns[static_cast<std::size_t>(r)] = own;
      used[static_cast<std::size_t>(own)] = 1;
    }
  }
  // One slack per row exists, so there are always enough left over.
  int next_slack = 0;
  for (int r = 0; r < rows; ++r) {
    if (snap.basic_columns[static_cast<std::size_t>(r)] >= 0) continue;
    while (used[static_cast<std::size_t>(num_vars + next_slack)]) ++next_slack;
    snap.basic_columns[static_cast<std::size_t>(r)] = num_vars + next_slack;
    used[static_cast<std::size_t>(num_vars + next_slack)] = 1;
  }

  // The carried-over set was nonsingular in the *old* matrix, but the delta
  // dropped rows and columns out from under it, so verify against the
  // target before handing it to the engine (a singular warm basis would be
  // thrown away wholesale there, wasting the whole map). On singularity,
  // repair with a greedy crash: start from the always-factorizable slack
  // identity and re-install each carried column only when it prices a
  // usable pivot against the basis built so far — a zero pivot also rejects
  // columns already basic, so the rebuild cannot produce duplicates. This
  // preserves the bulk of the old basis instead of discarding it because a
  // handful of rows became dependent.
  constexpr double kPivotTol = 1e-7;
  auto lu = make_basis_factorization(rows, /*dense=*/false, kPivotTol);
  if (rows > 0 && !lu->factorize(prep.columns, snap.basic_columns)) {
    std::vector<int> basic(static_cast<std::size_t>(rows));
    for (int r = 0; r < rows; ++r) {
      basic[static_cast<std::size_t>(r)] = num_vars + r;
    }
    if (!lu->factorize(prep.columns, basic)) return std::nullopt;
    std::vector<double> w(static_cast<std::size_t>(rows));
    for (int r = 0; r < rows; ++r) {
      const int cand = snap.basic_columns[static_cast<std::size_t>(r)];
      if (cand == num_vars + r) continue;
      std::fill(w.begin(), w.end(), 0.0);
      const SparseColumn& col = prep.columns[static_cast<std::size_t>(cand)];
      for (std::size_t e = 0; e < col.rows.size(); ++e) {
        w[static_cast<std::size_t>(col.rows[e])] = col.coefs[e];
      }
      lu->ftran(w);
      if (std::abs(w[static_cast<std::size_t>(r)]) < kPivotTol) continue;
      const int previous = basic[static_cast<std::size_t>(r)];
      basic[static_cast<std::size_t>(r)] = cand;
      if (!lu->update(w, r) || lu->should_refactorize()) {
        if (!lu->factorize(prep.columns, basic)) {
          // The eta representation accepted what the fresh factorization
          // rejects: drop this candidate and resynchronize.
          basic[static_cast<std::size_t>(r)] = previous;
          if (!lu->factorize(prep.columns, basic)) return std::nullopt;
        }
      }
    }
    snap.basic_columns = basic;
    // Final guard: the eta file can be more permissive than a fresh
    // factorization; make sure the repaired set stands on its own.
    if (!lu->factorize(prep.columns, snap.basic_columns)) return std::nullopt;
  }

  for (int r = 0; r < rows; ++r) {
    snap.column_status[static_cast<std::size_t>(
        snap.basic_columns[static_cast<std::size_t>(r)])] =
        BasisVarStatus::kBasic;
  }
  return snap;
}

}  // namespace etransform::lp
