// LpEngine — the single LP solve entry point.
//
// Every LP in the codebase (root relaxations, branch-and-bound node
// re-solves, cut-round restarts, strong-branching probes, standalone tools)
// goes through LpEngine::solve. The engine owns algorithm selection
// between the two-phase primal simplex and the bound-flipping dual simplex
// (both over the shared sparse LU / eta machinery in lp/basis.*):
//
//  * SolveMode::kPrimal — primal always (cold starts, differential tests).
//  * SolveMode::kDual   — try the dual from the start basis; fall back to
//                         primal when it is not dual-feasible.
//  * SolveMode::kAuto   — the default. Dual iff the caller's LpStartBasis
//                         advertises a reoptimization origin (bound change
//                         or appended rows) *and* the numeric
//                         dual-feasibility check passes; primal otherwise.
//
// The LpStartBasis contract: `snapshot` must come from a solve of the same
// PreparedLp (or be mapped onto it with extend_basis()); `origin` states
// how the LP at hand differs from the one that produced the snapshot.
// Origins are advisory — the engine re-verifies dual feasibility
// numerically before pivoting dual, so a stale or mistaken origin costs
// one btran and falls back to the primal warm start, never correctness.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lp/simplex.h"

namespace etransform::lp {

/// Warm-start contract for LpEngine::solve.
struct LpStartBasis {
  /// How the LP being solved relates to the LP that produced `snapshot`.
  enum class Origin {
    /// No reoptimization claim: install the basis as a primal warm start.
    kNone,
    /// Same rows and costs; only variable bounds changed (branch-and-bound
    /// children, iterative bound edits). The parent-optimal duals remain
    /// feasible, so kAuto reoptimizes with the dual simplex.
    kBoundChange,
    /// Rows were appended and the snapshot extended via extend_basis():
    /// new slacks enter basic, duals of the old rows carry over unchanged,
    /// so the start stays dual-feasible (cut rounds).
    kRowsAdded,
  };

  LpStartBasis() = default;
  explicit LpStartBasis(const BasisSnapshot* snap,
                        Origin snap_origin = Origin::kNone)
      : snapshot(snap), origin(snap_origin) {}

  /// Snapshot from a previous solve of the same PreparedLp; nullptr means a
  /// cold start. Ignored when structurally incompatible.
  const BasisSnapshot* snapshot = nullptr;
  Origin origin = Origin::kNone;
};

/// The LP engine. Stateless between solves; safe to reuse.
class LpEngine {
 public:
  explicit LpEngine(SimplexOptions options = {});

  /// Solves the LP relaxation of `model` under `ctx` (deadline, cancel
  /// token, events, stats). Throws InvalidInputError on malformed models;
  /// never throws for infeasible/unbounded (reported via status).
  [[nodiscard]] LpSolution solve(const Model& model, SolveContext& ctx) const;

  /// Solves with per-variable bound overrides (used by branch-and-bound).
  /// `lower`/`upper` must each have one entry per model variable.
  [[nodiscard]] LpSolution solve(const Model& model,
                                 const std::vector<double>& lower,
                                 const std::vector<double>& upper,
                                 SolveContext& ctx) const;

  /// Core entry point: solves over a prebuilt standard form, optionally
  /// restarting from `start` (see LpStartBasis). Callers that solve many
  /// bound variants of one model (branch-and-bound) should prepare once
  /// and call this.
  [[nodiscard]] LpSolution solve(const PreparedLp& prep,
                                 const std::vector<double>& lower,
                                 const std::vector<double>& upper,
                                 SolveContext& ctx,
                                 const LpStartBasis& start = {}) const;

  [[nodiscard]] const SimplexOptions& options() const { return options_; }

 private:
  SimplexOptions options_;
};

/// Maps a basis snapshot of one standard form onto a rebuilt one whose rows
/// are survivors of the old form (identity- or arbitrarily re-mapped) plus
/// appended rows. `old_row_of_new[r]` is the previous row index of new row
/// r, or -1 for a fresh row. Old column indices carry over verbatim (model
/// columns lead, surviving slacks keep their row's slot, new slacks
/// append): each surviving row keeps its old basic column, fresh rows start
/// with their own slack basic — which leaves the old duals (and hence dual
/// feasibility) intact, the property LpStartBasis::Origin::kRowsAdded
/// advertises. Rows whose old basic column vanished fall back to their
/// slack; stale nonbasic statuses are re-clamped when the snapshot is
/// applied.
[[nodiscard]] BasisSnapshot extend_basis(const BasisSnapshot& old,
                                         int num_vars,
                                         const std::vector<int>& old_row_of_new,
                                         int new_rows, int new_cols);

/// A basis snapshot annotated with the names of the structural columns and
/// kept rows of the standard form it indexes. Where a BasisSnapshot is only
/// valid against the exact PreparedLp that produced it, a NamedBasis is the
/// durable form: remap_basis() can carry it onto a *different* model that
/// shares most variable/row names — the iterative-replan case, where a
/// small instance delta adds or removes a handful of columns and rows but
/// leaves the bulk of the formulation (and its optimal basis) intact.
struct NamedBasis {
  BasisSnapshot basis;
  std::vector<std::string> variables;  // one per structural column
  std::vector<std::string> rows;       // one per kept internal row
};

/// Annotates `basis` (from a solve of `model`) with `model`'s variable and
/// kept-row names. Throws InvalidInputError when the snapshot's shape does
/// not match the model's standard form.
[[nodiscard]] NamedBasis name_basis(const Model& model,
                                    const BasisSnapshot& basis);

/// Maps `old_basis` onto `target`'s standard form by name: surviving
/// columns keep their status, surviving rows keep their basic column when
/// it also survived (falling back to the row's own slack otherwise), and
/// fresh rows start with their slack basic. Returns nullopt when the map
/// degenerates (duplicate basic columns, trivially infeasible target, or a
/// malformed snapshot); the result is advisory either way — the engine
/// re-validates any warm basis before pivoting from it.
[[nodiscard]] std::optional<BasisSnapshot> remap_basis(
    const NamedBasis& old_basis, const Model& target);

}  // namespace etransform::lp
