// Mixed-integer linear program model builder.
//
// This is the interchange type between the eTransform formulation layer and
// the optimization engine (simplex + branch-and-bound), mirroring the paper's
// architecture where the planner emits an LP that a solver consumes. Models
// can also be serialized to / parsed from the CPLEX LP file format
// (lp_format.h), exactly as the paper's prototype did.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace etransform::lp {

/// Positive infinity used for "no bound".
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Direction of a constraint row.
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// Optimization direction.
enum class Sense { kMinimize, kMaximize };

/// One `coefficient * variable` term of a linear expression.
struct Term {
  int var = 0;
  double coef = 0.0;
};

/// A variable definition. Integer variables are restricted to integral values
/// by the MILP solver; the simplex solver treats them as continuous.
struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  bool is_integer = false;
};

/// Structural hint a model builder can attach to a row so downstream
/// consumers (e.g. the MILP cut separators) know what the row encodes
/// without pattern-matching coefficients. Purely advisory: solvers must
/// remain correct when every row is kGeneric (presolve, for instance, drops
/// tags when it rebuilds rows).
enum class RowStructure : unsigned char {
  kGeneric,         // no structure claimed
  kKnapsack,        // sum(a_j x_j) <= b with a_j > 0 over binary x_j
                    // (the planner's per-site capacity rows)
  kBusinessImpact,  // cardinality row sum(x_j) <= omega * M over binaries
                    // (the planner's omega business-impact rows)
};

/// One linear constraint `sum(terms) relation rhs`.
struct Constraint {
  std::string name;
  std::vector<Term> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
  RowStructure structure = RowStructure::kGeneric;
};

/// A linear (or mixed-integer linear) optimization model.
///
/// Variables and constraints are identified by dense indices in insertion
/// order. Duplicate terms on the same variable within a row or the objective
/// are merged by `normalize()` (called automatically by the solvers).
class Model {
 public:
  /// Adds a variable and returns its index. `name` must be non-empty and
  /// unique is NOT enforced here (the LP writer uniquifies on demand).
  int add_variable(const std::string& name, double lower, double upper,
                   bool is_integer = false);

  /// Adds a continuous variable in [lower, upper].
  int add_continuous(const std::string& name, double lower = 0.0,
                     double upper = kInfinity);

  /// Adds a {0,1} integer variable.
  int add_binary(const std::string& name);

  /// Adds a constraint row and returns its index. Terms referencing
  /// out-of-range variables cause InvalidInputError.
  int add_constraint(const std::string& name, std::vector<Term> terms,
                     Relation relation, double rhs);

  /// Attaches a structural hint to an existing row (see RowStructure).
  void set_row_structure(int row, RowStructure structure);

  /// Replaces the objective. Terms referencing out-of-range variables cause
  /// InvalidInputError. `constant` is added to every reported objective value.
  void set_objective(Sense sense, std::vector<Term> terms,
                     double constant = 0.0);

  /// Adds `coef * var` to the existing objective (keeping sense/constant).
  void add_objective_term(int var, double coef);

  /// Tightens the bounds of an existing variable.
  void set_bounds(int var, double lower, double upper);

  /// Marks an existing variable as integer (or continuous).
  void set_integer(int var, bool is_integer);

  /// Merges duplicate terms and drops zero coefficients in every row and in
  /// the objective. Idempotent.
  void normalize();

  /// Throws InvalidInputError if any bound pair is inverted, any term index
  /// is out of range, or any coefficient/rhs is non-finite (infinite rhs on
  /// a <= / >= row is allowed and makes the row vacuous).
  void validate() const;

  [[nodiscard]] int num_variables() const {
    return static_cast<int>(variables_.size());
  }
  [[nodiscard]] int num_constraints() const {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const std::vector<Variable>& variables() const {
    return variables_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] const Variable& variable(int index) const;
  [[nodiscard]] const Constraint& constraint(int index) const;
  [[nodiscard]] Sense sense() const { return sense_; }
  [[nodiscard]] const std::vector<Term>& objective() const {
    return objective_;
  }
  [[nodiscard]] double objective_constant() const {
    return objective_constant_;
  }
  [[nodiscard]] bool has_integer_variables() const;

  /// Evaluates the objective at a full assignment of variable values.
  [[nodiscard]] double evaluate_objective(
      const std::vector<double>& values) const;

  /// True if `values` satisfies all rows and bounds within `tol`, and all
  /// integer variables are within `tol` of an integer.
  [[nodiscard]] bool is_feasible(const std::vector<double>& values,
                                 double tol = 1e-6) const;

 private:
  void check_terms(const std::vector<Term>& terms) const;

  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  std::vector<Term> objective_;
  double objective_constant_ = 0.0;
  Sense sense_ = Sense::kMinimize;
};

/// Merges duplicate variable indices in `terms` (summing coefficients) and
/// removes terms whose merged coefficient is exactly zero.
std::vector<Term> merge_terms(std::vector<Term> terms);

}  // namespace etransform::lp
