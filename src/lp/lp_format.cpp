#include "lp/lp_format.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "common/strings.h"

namespace etransform::lp {

namespace {

// ---------------------------------------------------------------- writer --

std::string format_coef(double value) {
  char raw[64];
  // %.17g preserves doubles exactly; trim the noise for common round values.
  std::snprintf(raw, sizeof(raw), "%.17g", value);
  double reparsed = 0.0;
  std::snprintf(raw, sizeof(raw), "%.12g", value);
  std::sscanf(raw, "%lf", &reparsed);
  if (reparsed == value) return raw;
  std::snprintf(raw, sizeof(raw), "%.17g", value);
  return raw;
}

bool valid_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.' || c == '#';
}

/// Produces LP-format-safe, unique names for a sequence of raw names.
class NameSanitizer {
 public:
  explicit NameSanitizer(char fallback_prefix)
      : fallback_prefix_(fallback_prefix) {}

  std::string sanitize(const std::string& raw) {
    std::string name;
    name.reserve(raw.size());
    for (const char c : raw) {
      name.push_back(valid_name_char(c) ? c : '_');
    }
    if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])) != 0 ||
        name[0] == '.') {
      name.insert(name.begin(), fallback_prefix_);
    }
    // "e12"-style names are ambiguous with exponents in the LP format.
    if ((name[0] == 'e' || name[0] == 'E') && name.size() > 1 &&
        std::isdigit(static_cast<unsigned char>(name[1])) != 0) {
      name.insert(name.begin(), fallback_prefix_);
    }
    std::string candidate = name;
    int suffix = 1;
    while (!used_.insert(candidate).second) {
      candidate = name + "_" + std::to_string(suffix++);
    }
    return candidate;
  }

 private:
  char fallback_prefix_;
  std::unordered_set<std::string> used_;
};

void write_expression(std::ostream& out, const std::vector<Term>& terms,
                      const std::vector<std::string>& names, double constant) {
  bool first = true;
  int on_line = 0;
  for (const Term& t : terms) {
    const double magnitude = std::abs(t.coef);
    if (first) {
      out << (t.coef < 0 ? "- " : "");
      first = false;
    } else {
      out << (t.coef < 0 ? " - " : " + ");
    }
    if (magnitude != 1.0) out << format_coef(magnitude) << ' ';
    out << names[static_cast<std::size_t>(t.var)];
    if (++on_line % 8 == 0) out << "\n    ";
  }
  if (constant != 0.0 || first) {
    if (!first) out << (constant < 0 ? " - " : " + ");
    else if (constant < 0) out << "- ";
    out << format_coef(std::abs(constant));
  }
}

// ---------------------------------------------------------------- parser --

enum class TokenKind { kName, kNumber, kOperator, kColon, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("LP parse error at line " + std::to_string(current_.line) +
                     ": " + message);
  }

 private:
  void advance() {
    skip_space_and_comments();
    current_.line = line_;
    if (pos_ >= text_.size()) {
      current_ = Token{TokenKind::kEnd, "", 0.0, line_};
      return;
    }
    const char c = text_[pos_];
    if (c == ':') {
      ++pos_;
      current_ = Token{TokenKind::kColon, ":", 0.0, line_};
      return;
    }
    if (c == '+' || c == '-') {
      ++pos_;
      current_ = Token{TokenKind::kOperator, std::string(1, c), 0.0, line_};
      return;
    }
    if (c == '<' || c == '>' || c == '=') {
      std::string op(1, c);
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '=') {
        op.push_back('=');
        ++pos_;
      }
      if (op == "<") op = "<=";
      if (op == ">") op = ">=";
      current_ = Token{TokenKind::kOperator, op, 0.0, line_};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '.')) {
        ++pos_;
      }
      // Exponent part.
      if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
        std::size_t look = pos_ + 1;
        if (look < text_.size() && (text_[look] == '+' || text_[look] == '-')) {
          ++look;
        }
        if (look < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[look])) != 0) {
          pos_ = look;
          while (pos_ < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
          }
        }
      }
      const std::string lexeme = text_.substr(start, pos_ - start);
      double value = 0.0;
      try {
        value = std::stod(lexeme);
      } catch (const std::exception&) {
        fail("bad number '" + lexeme + "'");
      }
      current_ = Token{TokenKind::kNumber, lexeme, value, line_};
      return;
    }
    if (valid_name_char(c) || std::isalpha(static_cast<unsigned char>(c)) != 0) {
      const std::size_t start = pos_;
      while (pos_ < text_.size() && valid_name_char(text_[pos_])) ++pos_;
      current_ = Token{TokenKind::kName, text_.substr(start, pos_ - start), 0.0,
                       line_};
      return;
    }
    throw ParseError("LP parse error at line " + std::to_string(line_) +
                     ": unexpected character '" + std::string(1, c) + "'");
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '\\') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

/// Checks (without consuming input) whether the lexer is positioned at a
/// section keyword. On a match reports the canonical section name and the
/// number of tokens the keyword spans (1, or 2 for "Subject To").
bool peek_section(const Lexer& lexer, std::string* section, int* span) {
  Lexer probe = lexer;  // Lexer is a cheap value type (reference + offsets)
  const Token token = probe.take();
  if (token.kind != TokenKind::kName) return false;
  const std::string word = to_lower(token.text);
  *span = 1;
  if (word == "minimize" || word == "minimise" || word == "min") {
    *section = "minimize";
    return true;
  }
  if (word == "maximize" || word == "maximise" || word == "max") {
    *section = "maximize";
    return true;
  }
  if (word == "subject" || word == "such") {
    const Token& next = probe.peek();
    if (next.kind == TokenKind::kName &&
        (equals_icase(next.text, "to") || equals_icase(next.text, "that"))) {
      *section = "subject_to";
      *span = 2;
      return true;
    }
    return false;
  }
  if (word == "st" || word == "s.t." || word == "st.") {
    *section = "subject_to";
    return true;
  }
  if (word == "bounds" || word == "bound") {
    *section = "bounds";
    return true;
  }
  if (word == "binary" || word == "binaries" || word == "bin") {
    *section = "binary";
    return true;
  }
  if (word == "general" || word == "generals" || word == "gen" ||
      word == "integer" || word == "integers") {
    *section = "general";
    return true;
  }
  if (word == "end") {
    *section = "end";
    return true;
  }
  return false;
}

/// Consumes a section keyword previously matched by peek_section.
void consume_section(Lexer& lexer, int span) {
  for (int i = 0; i < span; ++i) lexer.take();
}

/// True if the lexer is positioned at `name :`, i.e. the label that starts
/// the next statement (labels cannot occur inside an expression).
bool next_is_label(const Lexer& lexer) {
  Lexer probe = lexer;
  if (probe.peek().kind != TokenKind::kName) return false;
  probe.take();
  return probe.peek().kind == TokenKind::kColon;
}

struct ParsedExpression {
  std::vector<std::pair<std::string, double>> terms;
  double constant = 0.0;
};

/// Parses `[sign] [coef] [name]`* until a relational operator, section
/// keyword, or end of input.
ParsedExpression parse_expression(Lexer& lexer) {
  ParsedExpression expr;
  double sign = 1.0;
  bool pending_sign = false;
  while (true) {
    const Token& token = lexer.peek();
    if (token.kind == TokenKind::kEnd) break;
    if (token.kind == TokenKind::kOperator) {
      if (token.text == "+" || token.text == "-") {
        if (token.text == "-") sign = pending_sign ? -sign : -1.0;
        else if (!pending_sign) sign = 1.0;
        pending_sign = true;
        lexer.take();
        continue;
      }
      break;  // relational operator ends the expression
    }
    if (token.kind == TokenKind::kName) {
      std::string section;
      int span = 0;
      if (peek_section(lexer, &section, &span)) {
        if (pending_sign) {
          lexer.fail("dangling sign before section '" + section + "'");
        }
        break;  // leave the keyword for the caller
      }
      if (next_is_label(lexer)) {
        if (pending_sign) lexer.fail("dangling sign before a row label");
        break;  // `name:` starts the next statement
      }
      expr.terms.emplace_back(lexer.take().text, sign);
      sign = 1.0;
      pending_sign = false;
      continue;
    }
    if (token.kind == TokenKind::kNumber) {
      const double value = lexer.take().number;
      const Token& next = lexer.peek();
      if (next.kind == TokenKind::kName) {
        std::string section;
        int span = 0;
        if (!peek_section(lexer, &section, &span) && !next_is_label(lexer)) {
          expr.terms.emplace_back(lexer.take().text, sign * value);
          sign = 1.0;
          pending_sign = false;
          continue;
        }
      }
      expr.constant += sign * value;
      sign = 1.0;
      pending_sign = false;
      continue;
    }
    lexer.fail("unexpected token '" + token.text + "' in expression");
  }
  if (pending_sign) lexer.fail("dangling sign at end of expression");
  return expr;
}

class ModelAssembler {
 public:
  int variable(const std::string& name) {
    const auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    const int id = model_.add_variable(name, 0.0, kInfinity);
    index_.emplace(name, id);
    return id;
  }

  int find(const std::string& name, Lexer& lexer) {
    const auto it = index_.find(name);
    if (it == index_.end()) {
      lexer.fail("unknown variable '" + name + "'");
    }
    return it->second;
  }

  std::vector<Term> to_terms(const ParsedExpression& expr) {
    std::vector<Term> terms;
    terms.reserve(expr.terms.size());
    for (const auto& [name, coef] : expr.terms) {
      terms.push_back(Term{variable(name), coef});
    }
    return merge_terms(std::move(terms));
  }

  Model take() { return std::move(model_); }
  Model& model() { return model_; }

 private:
  Model model_;
  std::unordered_map<std::string, int> index_;
};

double parse_signed_bound(Lexer& lexer) {
  double sign = 1.0;
  while (lexer.peek().kind == TokenKind::kOperator &&
         (lexer.peek().text == "+" || lexer.peek().text == "-")) {
    if (lexer.take().text == "-") sign = -sign;
  }
  const Token token = lexer.take();
  if (token.kind == TokenKind::kNumber) return sign * token.number;
  if (token.kind == TokenKind::kName &&
      (equals_icase(token.text, "inf") || equals_icase(token.text, "infinity"))) {
    return sign * kInfinity;
  }
  lexer.fail("expected a bound value");
}

}  // namespace

std::string write_lp(const Model& model) {
  std::ostringstream out;
  write_lp(model, out);
  return out.str();
}

void write_lp(const Model& model, std::ostream& out) {
  model.validate();
  NameSanitizer var_names('v');
  NameSanitizer row_names('c');
  std::vector<std::string> vnames;
  vnames.reserve(static_cast<std::size_t>(model.num_variables()));
  for (const auto& v : model.variables()) {
    vnames.push_back(var_names.sanitize(v.name));
  }

  out << "\\ Generated by eTransform\n";
  out << (model.sense() == Sense::kMinimize ? "Minimize" : "Maximize") << "\n";
  out << " obj: ";
  write_expression(out, merge_terms(model.objective()), vnames,
                   model.objective_constant());
  out << "\nSubject To\n";
  for (const auto& row : model.constraints()) {
    out << ' ' << row_names.sanitize(row.name.empty() ? "c" : row.name)
        << ": ";
    const auto terms = merge_terms(row.terms);
    if (terms.empty()) {
      // The format requires at least one variable per row; emit `0 v0`.
      if (model.num_variables() == 0) {
        throw InvalidInputError("cannot write empty row with no variables");
      }
      out << "0 " << vnames[0];
    } else {
      write_expression(out, terms, vnames, 0.0);
    }
    switch (row.relation) {
      case Relation::kLessEqual: out << " <= "; break;
      case Relation::kGreaterEqual: out << " >= "; break;
      case Relation::kEqual: out << " = "; break;
    }
    out << format_coef(row.rhs) << "\n";
  }
  out << "Bounds\n";
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    const std::string& name = vnames[static_cast<std::size_t>(j)];
    if (v.lower == 0.0 && v.upper == kInfinity) continue;  // default
    if (v.lower == -kInfinity && v.upper == kInfinity) {
      out << ' ' << name << " free\n";
    } else if (v.lower == v.upper) {
      out << ' ' << name << " = " << format_coef(v.lower) << "\n";
    } else {
      out << ' ';
      if (v.lower == -kInfinity) out << "-inf";
      else out << format_coef(v.lower);
      out << " <= " << name << " <= ";
      if (v.upper == kInfinity) out << "inf";
      else out << format_coef(v.upper);
      out << "\n";
    }
  }
  bool any_binary = false;
  bool any_general = false;
  for (const auto& v : model.variables()) {
    if (!v.is_integer) continue;
    if (v.lower == 0.0 && v.upper == 1.0) any_binary = true;
    else any_general = true;
  }
  if (any_binary) {
    out << "Binary\n";
    int on_line = 0;
    for (int j = 0; j < model.num_variables(); ++j) {
      const Variable& v = model.variable(j);
      if (v.is_integer && v.lower == 0.0 && v.upper == 1.0) {
        out << ' ' << vnames[static_cast<std::size_t>(j)];
        if (++on_line % 10 == 0) out << "\n";
      }
    }
    if (on_line % 10 != 0) out << "\n";
  }
  if (any_general) {
    out << "General\n";
    int on_line = 0;
    for (int j = 0; j < model.num_variables(); ++j) {
      const Variable& v = model.variable(j);
      if (v.is_integer && !(v.lower == 0.0 && v.upper == 1.0)) {
        out << ' ' << vnames[static_cast<std::size_t>(j)];
        if (++on_line % 10 == 0) out << "\n";
      }
    }
    if (on_line % 10 != 0) out << "\n";
  }
  out << "End\n";
}

Model parse_lp(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_lp(buffer.str());
}

Model parse_lp(const std::string& text) {
  Lexer lexer(text);
  ModelAssembler assembler;

  // Objective section.
  std::string section;
  {
    int span = 0;
    if (!peek_section(lexer, &section, &span) ||
        (section != "minimize" && section != "maximize")) {
      lexer.fail("LP file must start with Minimize or Maximize");
    }
    consume_section(lexer, span);
  }
  const Sense sense =
      section == "minimize" ? Sense::kMinimize : Sense::kMaximize;

  // Optional objective label.
  auto skip_label = [&lexer]() {
    Lexer probe = lexer;  // cheap copy: lexer holds a reference + offsets
    if (probe.peek().kind == TokenKind::kName) {
      probe.take();
      if (probe.peek().kind == TokenKind::kColon) {
        lexer.take();
        lexer.take();
        return;
      }
    }
  };
  skip_label();
  const ParsedExpression objective = parse_expression(lexer);
  assembler.model().set_objective(sense, {}, 0.0);  // placeholder, set below

  // Expression parsing may have stopped at a section keyword.
  std::vector<Term> objective_terms = assembler.to_terms(objective);
  assembler.model().set_objective(sense, std::move(objective_terms),
                                  objective.constant);

  bool saw_end = false;
  while (!saw_end && lexer.peek().kind != TokenKind::kEnd) {
    const Token token = lexer.peek();
    int span = 0;
    if (!peek_section(lexer, &section, &span)) {
      lexer.fail("expected a section keyword, got '" + token.text + "'");
    }
    consume_section(lexer, span);
    if (section == "end") {
      saw_end = true;
      break;
    }
    if (section == "subject_to") {
      while (true) {
        const Token& next = lexer.peek();
        if (next.kind == TokenKind::kEnd) break;
        std::string probe_section;
        int probe_span = 0;
        if (next.kind == TokenKind::kName &&
            peek_section(lexer, &probe_section, &probe_span)) {
          break;
        }
        // Optional row label.
        std::string row_name = "c" + std::to_string(
                                         assembler.model().num_constraints());
        {
          Lexer probe = lexer;
          if (probe.peek().kind == TokenKind::kName) {
            const Token name_token = probe.take();
            if (probe.peek().kind == TokenKind::kColon) {
              row_name = name_token.text;
              lexer.take();
              lexer.take();
            }
          }
        }
        const ParsedExpression lhs = parse_expression(lexer);
        const Token relation = lexer.take();
        if (relation.kind != TokenKind::kOperator ||
            (relation.text != "<=" && relation.text != ">=" &&
             relation.text != "=")) {
          lexer.fail("expected <=, >= or = in constraint '" + row_name + "'");
        }
        const ParsedExpression rhs = parse_expression(lexer);
        Relation rel = Relation::kEqual;
        if (relation.text == "<=") rel = Relation::kLessEqual;
        else if (relation.text == ">=") rel = Relation::kGreaterEqual;
        std::vector<Term> terms = assembler.to_terms(lhs);
        for (const auto& [name, coef] : rhs.terms) {
          terms.push_back(Term{assembler.variable(name), -coef});
        }
        assembler.model().add_constraint(
            row_name, merge_terms(std::move(terms)), rel,
            rhs.constant - lhs.constant);
      }
      continue;
    }
    if (section == "bounds") {
      while (true) {
        const Token& next = lexer.peek();
        if (next.kind == TokenKind::kEnd) break;
        std::string probe_section;
        int probe_span = 0;
        if (next.kind == TokenKind::kName &&
            peek_section(lexer, &probe_section, &probe_span)) {
          break;
        }
        // Forms: `x free` | `x = v` | `x <= u` | `x >= l` | `l <= x [<= u]`.
        if (next.kind == TokenKind::kName) {
          Lexer probe = lexer;
          probe.take();
          const Token after = probe.peek();
          if (after.kind == TokenKind::kName &&
              equals_icase(after.text, "free")) {
            const int var = assembler.variable(lexer.take().text);
            lexer.take();
            assembler.model().set_bounds(var, -kInfinity, kInfinity);
            continue;
          }
          if (after.kind == TokenKind::kOperator &&
              (after.text == "<=" || after.text == ">=" || after.text == "=")) {
            const int var = assembler.variable(lexer.take().text);
            const std::string op = lexer.take().text;
            const double value = parse_signed_bound(lexer);
            const Variable& v = assembler.model().variable(var);
            if (op == "=") assembler.model().set_bounds(var, value, value);
            else if (op == "<=") assembler.model().set_bounds(var, v.lower, value);
            else assembler.model().set_bounds(var, value, v.upper);
            continue;
          }
          lexer.fail("malformed bound for '" + next.text + "'");
        }
        // Leading number: `l <= x [<= u]`.
        const double low = parse_signed_bound(lexer);
        const Token op1 = lexer.take();
        if (op1.kind != TokenKind::kOperator || op1.text != "<=") {
          lexer.fail("expected <= in bound");
        }
        const Token var_token = lexer.take();
        if (var_token.kind != TokenKind::kName) {
          lexer.fail("expected variable name in bound");
        }
        const int var = assembler.variable(var_token.text);
        double high = assembler.model().variable(var).upper;
        if (lexer.peek().kind == TokenKind::kOperator &&
            lexer.peek().text == "<=") {
          lexer.take();
          high = parse_signed_bound(lexer);
        }
        assembler.model().set_bounds(var, low, high);
      }
      continue;
    }
    if (section == "binary" || section == "general") {
      while (true) {
        const Token& next = lexer.peek();
        if (next.kind != TokenKind::kName) break;
        std::string probe_section;
        int probe_span = 0;
        if (peek_section(lexer, &probe_section, &probe_span)) break;
        const int var = assembler.variable(lexer.take().text);
        Model& model = assembler.model();
        if (section == "binary") {
          model.set_bounds(var, 0.0, 1.0);
        }
        model.set_integer(var, true);
      }
      continue;
    }
    lexer.fail("unhandled section '" + section + "'");
  }
  Model model = assembler.take();
  model.normalize();
  model.validate();
  return model;
}

std::string write_solution(const Model& model, const LpSolution& solution) {
  std::ostringstream out;
  out << "status " << to_string(solution.status) << "\n";
  out << "objective " << format_coef(solution.objective) << "\n";
  if (solution.status == SolveStatus::kOptimal) {
    for (int j = 0; j < model.num_variables(); ++j) {
      out << model.variable(j).name << ' '
          << format_coef(solution.values[static_cast<std::size_t>(j)]) << "\n";
    }
  }
  return out.str();
}

SolutionFile parse_solution(const std::string& text) {
  SolutionFile file;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  bool saw_status = false;
  bool saw_objective = false;
  while (std::getline(in, line)) {
    ++line_number;
    const auto fields = split_whitespace(line);
    if (fields.empty()) continue;
    if (fields[0] == "status") {
      if (fields.size() != 2) {
        throw ParseError("solution line " + std::to_string(line_number) +
                         ": malformed status");
      }
      file.status = fields[1];
      saw_status = true;
      continue;
    }
    if (fields[0] == "objective") {
      if (fields.size() != 2) {
        throw ParseError("solution line " + std::to_string(line_number) +
                         ": malformed objective");
      }
      try {
        file.objective = std::stod(fields[1]);
      } catch (const std::exception&) {
        throw ParseError("solution line " + std::to_string(line_number) +
                         ": bad objective value");
      }
      saw_objective = true;
      continue;
    }
    if (fields.size() != 2) {
      throw ParseError("solution line " + std::to_string(line_number) +
                       ": expected 'name value'");
    }
    try {
      file.values.emplace_back(fields[0], std::stod(fields[1]));
    } catch (const std::exception&) {
      throw ParseError("solution line " + std::to_string(line_number) +
                       ": bad value for '" + fields[0] + "'");
    }
  }
  if (!saw_status || !saw_objective) {
    throw ParseError("solution file missing status/objective header");
  }
  return file;
}

}  // namespace etransform::lp
