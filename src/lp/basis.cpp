#include "lp/basis.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace etransform::lp {

namespace {

/// Relative threshold-pivoting factor: a pivot must be at least this
/// fraction of the largest entry in its column to be eligible. Trades a
/// little fill (Markowitz would prefer the sparsest pivot) for stability.
constexpr double kStabilityRel = 0.01;

/// Entries this small relative to the eta pivot are not stored in eta files.
constexpr double kEtaDropTol = 1e-13;

/// Once the active submatrix passes this density, Markowitz ordering mostly
/// produces fill anyway; finishing with a cache-friendly dense kernel
/// (plain partial pivoting) factorizes the trailing block much faster while
/// leaving the sparse leading factors untouched.
constexpr double kDenseWindowDensity = 0.35;

/// Below this active dimension the dense-window switch is not worth the
/// bookkeeping; the sparse loop finishes tiny blocks just fine.
constexpr int kDenseWindowMinDim = 32;

/// Re-estimate the active-submatrix density only every few steps; the count
/// scan is O(active columns).
constexpr int kDensityCheckStride = 8;

/// One (index, value) entry of a sparse factor column/row.
struct Entry {
  int index;
  double value;
};

// ---------------------------------------------------------------------------
// Sparse LU with Markowitz ordering + product-form eta updates.

class SparseLuBasis final : public BasisFactorization {
 public:
  SparseLuBasis(int rows, double pivot_tol)
      : m_(rows), pivot_tol_(pivot_tol), work_vals_(static_cast<std::size_t>(rows), 0.0),
        work_mark_(static_cast<std::size_t>(rows), -1) {}

  bool factorize(const std::vector<SparseColumn>& columns,
                 const std::vector<int>& basis) override {
    eta_r_.clear();
    eta_pivot_.clear();
    eta_index_.clear();
    eta_value_.clear();
    eta_start_.assign(1, 0);
    if (stamp_ > std::numeric_limits<int>::max() / 2) {
      std::fill(work_mark_.begin(), work_mark_.end(), -1);
      stamp_ = 0;
    }
    l_cols_.assign(static_cast<std::size_t>(m_), {});
    u_rows_.assign(static_cast<std::size_t>(m_), {});
    u_diag_.assign(static_cast<std::size_t>(m_), 0.0);
    row_of_step_.assign(static_cast<std::size_t>(m_), -1);
    pos_of_step_.assign(static_cast<std::size_t>(m_), -1);
    if (m_ == 0) {
      ++counters_.refactorizations;
      counters_.factor_entries = 0;
      return true;
    }

    // Active submatrix: exact column-major values plus a lazy row pattern.
    std::vector<std::vector<Entry>> cols(static_cast<std::size_t>(m_));
    std::vector<std::vector<int>> row_pat(static_cast<std::size_t>(m_));
    std::vector<int> row_count(static_cast<std::size_t>(m_), 0);
    std::vector<bool> row_active(static_cast<std::size_t>(m_), true);
    std::vector<bool> col_active(static_cast<std::size_t>(m_), true);
    for (int k = 0; k < m_; ++k) {
      const SparseColumn& col = columns[static_cast<std::size_t>(basis[static_cast<std::size_t>(k)])];
      auto& dest = cols[static_cast<std::size_t>(k)];
      dest.reserve(col.rows.size());
      for (std::size_t e = 0; e < col.rows.size(); ++e) {
        if (col.coefs[e] == 0.0) continue;
        dest.push_back(Entry{col.rows[e], col.coefs[e]});
        row_pat[static_cast<std::size_t>(col.rows[e])].push_back(k);
        ++row_count[static_cast<std::size_t>(col.rows[e])];
      }
    }

    std::vector<Entry> mults;     // pivot-column multipliers of one step
    std::vector<Entry> pivot_row; // pivot-row entries of one step
    // The stamp is monotonic across factorize() calls: work_mark_ persists,
    // so restarting it would collide with marks left by a previous
    // factorization and silently drop fill-in entries.
    int& stamp = stamp_;

    for (int step = 0; step < m_; ++step) {
      // --- Dense-window switch once the active block has densified. -------
      if (step % kDensityCheckStride == 0 && m_ - step >= kDenseWindowMinDim) {
        long long active_entries = 0;
        for (int j = 0; j < m_; ++j) {
          if (col_active[static_cast<std::size_t>(j)]) {
            active_entries +=
                static_cast<long long>(cols[static_cast<std::size_t>(j)].size());
          }
        }
        const double active = m_ - step;
        if (static_cast<double>(active_entries) >=
            kDenseWindowDensity * active * active) {
          if (!finish_dense_window(step, cols, col_active, row_active)) {
            return false;
          }
          break;
        }
      }

      // --- Markowitz pivot selection over the sparsest few columns. -------
      // Scan active columns for the smallest counts (O(m) per step), then
      // price only those candidates' entries.
      constexpr int kCandidates = 8;
      int cand[kCandidates];
      int cand_n = 0;
      for (int j = 0; j < m_; ++j) {
        if (!col_active[static_cast<std::size_t>(j)]) continue;
        const int count = static_cast<int>(cols[static_cast<std::size_t>(j)].size());
        int at = cand_n < kCandidates ? cand_n : kCandidates;
        // Insertion sort by column count; keep the kCandidates sparsest.
        if (cand_n < kCandidates) ++cand_n;
        while (at > 0 &&
               static_cast<int>(cols[static_cast<std::size_t>(cand[at - 1])].size()) > count) {
          if (at < kCandidates) cand[at] = cand[at - 1];
          --at;
        }
        if (at < kCandidates) cand[at] = j;
      }
      int best_row = -1;
      int best_col = -1;
      double best_val = 0.0;
      long long best_cost = std::numeric_limits<long long>::max();
      for (int c = 0; c < cand_n; ++c) {
        const int j = cand[c];
        const auto& col = cols[static_cast<std::size_t>(j)];
        double col_max = 0.0;
        for (const Entry& e : col) col_max = std::max(col_max, std::abs(e.value));
        if (col_max < pivot_tol_) continue;
        const double eligible = std::max(pivot_tol_, kStabilityRel * col_max);
        const long long cc = static_cast<long long>(col.size()) - 1;
        for (const Entry& e : col) {
          const double mag = std::abs(e.value);
          if (mag < eligible) continue;
          const long long cost =
              cc * (static_cast<long long>(row_count[static_cast<std::size_t>(e.index)]) - 1);
          if (cost < best_cost ||
              (cost == best_cost && mag > std::abs(best_val))) {
            best_cost = cost;
            best_row = e.index;
            best_col = j;
            best_val = e.value;
          }
        }
      }
      if (best_row < 0) {
        // The sparsest candidates were all below tolerance; fall back to a
        // full scan before declaring the basis singular.
        for (int j = 0; j < m_ && best_row < 0; ++j) {
          if (!col_active[static_cast<std::size_t>(j)]) continue;
          for (const Entry& e : cols[static_cast<std::size_t>(j)]) {
            if (std::abs(e.value) < pivot_tol_) continue;
            if (best_row < 0 || std::abs(e.value) > std::abs(best_val)) {
              best_row = e.index;
              best_col = j;
              best_val = e.value;
            }
          }
        }
        if (best_row < 0) return false;  // singular within tolerance
      }

      row_of_step_[static_cast<std::size_t>(step)] = best_row;
      pos_of_step_[static_cast<std::size_t>(step)] = best_col;
      u_diag_[static_cast<std::size_t>(step)] = best_val;

      // --- Extract multipliers from the pivot column. ---------------------
      mults.clear();
      for (const Entry& e : cols[static_cast<std::size_t>(best_col)]) {
        if (e.index == best_row) continue;
        mults.push_back(Entry{e.index, e.value / best_val});
        --row_count[static_cast<std::size_t>(e.index)];
      }
      cols[static_cast<std::size_t>(best_col)].clear();
      cols[static_cast<std::size_t>(best_col)].shrink_to_fit();
      col_active[static_cast<std::size_t>(best_col)] = false;
      row_active[static_cast<std::size_t>(best_row)] = false;

      // --- Extract the pivot row (becomes U row `step`). ------------------
      pivot_row.clear();
      for (const int j : row_pat[static_cast<std::size_t>(best_row)]) {
        if (j == best_col || !col_active[static_cast<std::size_t>(j)]) continue;
        auto& col = cols[static_cast<std::size_t>(j)];
        for (std::size_t e = 0; e < col.size(); ++e) {
          if (col[e].index != best_row) continue;
          pivot_row.push_back(Entry{j, col[e].value});
          col[e] = col.back();
          col.pop_back();
          break;
        }
      }
      row_pat[static_cast<std::size_t>(best_row)].clear();

      // --- Schur update: col_j -= l * u_kj for every multiplier. ----------
      for (const Entry& u : pivot_row) {
        auto& col = cols[static_cast<std::size_t>(u.index)];
        ++stamp;
        for (const Entry& e : col) {
          work_mark_[static_cast<std::size_t>(e.index)] = stamp;
          work_vals_[static_cast<std::size_t>(e.index)] = e.value;
        }
        for (const Entry& l : mults) {
          const std::size_t i = static_cast<std::size_t>(l.index);
          if (work_mark_[i] == stamp) {
            work_vals_[i] -= l.value * u.value;
          } else {
            work_mark_[i] = stamp;
            work_vals_[i] = -l.value * u.value;
            col.push_back(Entry{l.index, 0.0});  // fill-in; value set below
            row_pat_push(row_pat, l.index, u.index);
            ++row_count[i];
          }
        }
        std::size_t keep = 0;
        for (std::size_t e = 0; e < col.size(); ++e) {
          const std::size_t i = static_cast<std::size_t>(col[e].index);
          const double v = work_vals_[i];
          if (v == 0.0) {
            --row_count[i];
            continue;  // exact cancellation
          }
          col[keep++] = Entry{col[e].index, v};
        }
        col.resize(keep);
      }

      l_cols_[static_cast<std::size_t>(step)] = mults;  // row indices for now
      u_rows_[static_cast<std::size_t>(step)] = pivot_row;  // positions for now
    }

    // Map factor indices into elimination-step coordinates while flattening
    // the factors into contiguous index/value arrays: the triangular solves
    // run every iteration and are far kinder to the cache this way than
    // chasing a vector-of-vectors.
    step_of_row_.assign(static_cast<std::size_t>(m_), -1);
    step_of_pos_.assign(static_cast<std::size_t>(m_), -1);
    for (int k = 0; k < m_; ++k) {
      step_of_row_[static_cast<std::size_t>(row_of_step_[static_cast<std::size_t>(k)])] = k;
      step_of_pos_[static_cast<std::size_t>(pos_of_step_[static_cast<std::size_t>(k)])] = k;
    }
    std::size_t l_total = 0;
    std::size_t u_total = 0;
    for (int k = 0; k < m_; ++k) {
      l_total += l_cols_[static_cast<std::size_t>(k)].size();
      u_total += u_rows_[static_cast<std::size_t>(k)].size();
    }
    l_start_.resize(static_cast<std::size_t>(m_) + 1);
    u_start_.resize(static_cast<std::size_t>(m_) + 1);
    l_index_.resize(l_total);
    l_value_.resize(l_total);
    u_index_.resize(u_total);
    u_value_.resize(u_total);
    std::size_t lp = 0;
    std::size_t up = 0;
    for (int k = 0; k < m_; ++k) {
      l_start_[static_cast<std::size_t>(k)] = lp;
      u_start_[static_cast<std::size_t>(k)] = up;
      for (const Entry& e : l_cols_[static_cast<std::size_t>(k)]) {
        l_index_[lp] = step_of_row_[static_cast<std::size_t>(e.index)];
        l_value_[lp++] = e.value;
      }
      for (const Entry& e : u_rows_[static_cast<std::size_t>(k)]) {
        u_index_[up] = step_of_pos_[static_cast<std::size_t>(e.index)];
        u_value_[up++] = e.value;
      }
    }
    l_start_[static_cast<std::size_t>(m_)] = lp;
    u_start_[static_cast<std::size_t>(m_)] = up;
    const long long entries =
        static_cast<long long>(m_) + static_cast<long long>(lp) +
        static_cast<long long>(up);
    ++counters_.refactorizations;
    counters_.factor_entries = entries;
    lu_entries_ = entries;
    eta_entries_since_factor_ = 0;
    return true;
  }

  /// Factorizes the trailing active block with a dense right-looking LU
  /// (partial pivoting, column-major daxpy inner loops), emitting factors
  /// for steps `step..m_-1` in the same pre-remap convention as the sparse
  /// loop: L entries carry original row indices, U entries carry basis
  /// positions.
  bool finish_dense_window(int step, std::vector<std::vector<Entry>>& cols,
                           const std::vector<bool>& col_active,
                           const std::vector<bool>& row_active) {
    const int a = m_ - step;
    const auto az = static_cast<std::size_t>(a);
    std::vector<int> orig_row(az);   // local row -> original row (permuted)
    std::vector<int> orig_col(az);   // local col -> basis position
    std::vector<int> local_row(static_cast<std::size_t>(m_), -1);
    int r = 0;
    for (int i = 0; i < m_; ++i) {
      if (!row_active[static_cast<std::size_t>(i)]) continue;
      local_row[static_cast<std::size_t>(i)] = r;
      orig_row[static_cast<std::size_t>(r++)] = i;
    }
    if (r != a) return false;  // active rows/cols out of sync: bail out
    dense_kernel_.assign(az * az, 0.0);
    int c = 0;
    for (int j = 0; j < m_; ++j) {
      if (!col_active[static_cast<std::size_t>(j)]) continue;
      orig_col[static_cast<std::size_t>(c)] = j;
      double* dest = dense_kernel_.data() + static_cast<std::size_t>(c) * az;
      for (const Entry& e : cols[static_cast<std::size_t>(j)]) {
        dest[local_row[static_cast<std::size_t>(e.index)]] = e.value;
      }
      ++c;
    }

    for (int k = 0; k < a; ++k) {
      double* ck = dense_kernel_.data() + static_cast<std::size_t>(k) * az;
      int p = k;
      double best = std::abs(ck[k]);
      for (int i = k + 1; i < a; ++i) {
        const double mag = std::abs(ck[i]);
        if (mag > best) {
          best = mag;
          p = i;
        }
      }
      if (best < pivot_tol_) return false;  // singular within tolerance
      if (p != k) {
        // Full-row swap (including the L part) keeps local physical order
        // equal to elimination order.
        for (std::size_t j = 0; j < az; ++j) {
          std::swap(dense_kernel_[j * az + static_cast<std::size_t>(k)],
                    dense_kernel_[j * az + static_cast<std::size_t>(p)]);
        }
        std::swap(orig_row[static_cast<std::size_t>(k)],
                  orig_row[static_cast<std::size_t>(p)]);
      }
      const double inv_piv = 1.0 / ck[k];
      for (int i = k + 1; i < a; ++i) ck[i] *= inv_piv;
      for (int j = k + 1; j < a; ++j) {
        double* cj = dense_kernel_.data() + static_cast<std::size_t>(j) * az;
        const double u = cj[k];
        if (u == 0.0) continue;
        for (int i = k + 1; i < a; ++i) cj[i] -= u * ck[i];
      }
    }

    for (int k = 0; k < a; ++k) {
      const auto s = static_cast<std::size_t>(step + k);
      const double* ck = dense_kernel_.data() + static_cast<std::size_t>(k) * az;
      row_of_step_[s] = orig_row[static_cast<std::size_t>(k)];
      pos_of_step_[s] = orig_col[static_cast<std::size_t>(k)];
      u_diag_[s] = ck[k];
      auto& lcol = l_cols_[s];
      for (int i = k + 1; i < a; ++i) {
        if (ck[i] != 0.0) {
          lcol.push_back(Entry{orig_row[static_cast<std::size_t>(i)], ck[i]});
        }
      }
      auto& urow = u_rows_[s];
      for (int j = k + 1; j < a; ++j) {
        const double v = dense_kernel_[static_cast<std::size_t>(j) * az +
                                       static_cast<std::size_t>(k)];
        if (v != 0.0) {
          urow.push_back(Entry{orig_col[static_cast<std::size_t>(j)], v});
        }
      }
    }
    return true;
  }

  void ftran(std::vector<double>& x) const override {
    if (m_ == 0) return;
    // Permute rows into elimination order, then L then U.
    auto& z = scratch_;
    z.resize(static_cast<std::size_t>(m_));
    for (int k = 0; k < m_; ++k) {
      z[static_cast<std::size_t>(k)] =
          x[static_cast<std::size_t>(row_of_step_[static_cast<std::size_t>(k)])];
    }
    for (int k = 0; k < m_; ++k) {
      const double t = z[static_cast<std::size_t>(k)];
      if (t == 0.0) continue;
      const std::size_t end = l_start_[static_cast<std::size_t>(k) + 1];
      for (std::size_t e = l_start_[static_cast<std::size_t>(k)]; e < end; ++e) {
        z[static_cast<std::size_t>(l_index_[e])] -= l_value_[e] * t;
      }
    }
    for (int k = m_ - 1; k >= 0; --k) {
      double t = z[static_cast<std::size_t>(k)];
      const std::size_t end = u_start_[static_cast<std::size_t>(k) + 1];
      for (std::size_t e = u_start_[static_cast<std::size_t>(k)]; e < end; ++e) {
        t -= u_value_[e] * z[static_cast<std::size_t>(u_index_[e])];
      }
      z[static_cast<std::size_t>(k)] = t / u_diag_[static_cast<std::size_t>(k)];
    }
    for (int k = 0; k < m_; ++k) {
      x[static_cast<std::size_t>(pos_of_step_[static_cast<std::size_t>(k)])] =
          z[static_cast<std::size_t>(k)];
    }
    // Product-form etas, oldest first.
    const std::size_t num_etas = eta_r_.size();
    for (std::size_t q = 0; q < num_etas; ++q) {
      const auto r = static_cast<std::size_t>(eta_r_[q]);
      const double t = x[r] / eta_pivot_[q];
      x[r] = t;
      if (t == 0.0) continue;
      const std::size_t end = eta_start_[q + 1];
      for (std::size_t e = eta_start_[q]; e < end; ++e) {
        x[static_cast<std::size_t>(eta_index_[e])] -= eta_value_[e] * t;
      }
    }
  }

  void btran(std::vector<double>& x) const override {
    if (m_ == 0) return;
    // Eta transposes, newest first.
    for (std::size_t q = eta_r_.size(); q-- > 0;) {
      const auto r = static_cast<std::size_t>(eta_r_[q]);
      double t = x[r];
      const std::size_t end = eta_start_[q + 1];
      for (std::size_t e = eta_start_[q]; e < end; ++e) {
        t -= eta_value_[e] * x[static_cast<std::size_t>(eta_index_[e])];
      }
      x[r] = t / eta_pivot_[q];
    }
    // U^T forward (scattering U rows), then L^T backward (gathering L cols).
    auto& z = scratch_;
    z.resize(static_cast<std::size_t>(m_));
    for (int k = 0; k < m_; ++k) {
      z[static_cast<std::size_t>(k)] =
          x[static_cast<std::size_t>(pos_of_step_[static_cast<std::size_t>(k)])];
    }
    for (int k = 0; k < m_; ++k) {
      const double v = z[static_cast<std::size_t>(k)] / u_diag_[static_cast<std::size_t>(k)];
      z[static_cast<std::size_t>(k)] = v;
      if (v == 0.0) continue;
      const std::size_t end = u_start_[static_cast<std::size_t>(k) + 1];
      for (std::size_t e = u_start_[static_cast<std::size_t>(k)]; e < end; ++e) {
        z[static_cast<std::size_t>(u_index_[e])] -= u_value_[e] * v;
      }
    }
    for (int k = m_ - 1; k >= 0; --k) {
      double t = z[static_cast<std::size_t>(k)];
      const std::size_t end = l_start_[static_cast<std::size_t>(k) + 1];
      for (std::size_t e = l_start_[static_cast<std::size_t>(k)]; e < end; ++e) {
        t -= l_value_[e] * z[static_cast<std::size_t>(l_index_[e])];
      }
      z[static_cast<std::size_t>(k)] = t;
    }
    for (int k = 0; k < m_; ++k) {
      x[static_cast<std::size_t>(row_of_step_[static_cast<std::size_t>(k)])] =
          z[static_cast<std::size_t>(k)];
    }
  }

  bool update(const std::vector<double>& w, int r) override {
    const double pivot = w[static_cast<std::size_t>(r)];
    if (!(std::abs(pivot) > pivot_tol_)) return false;
    const std::size_t before = eta_index_.size();
    const double drop = kEtaDropTol * std::abs(pivot);
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      const double v = w[static_cast<std::size_t>(i)];
      if (std::abs(v) <= drop) continue;
      eta_index_.push_back(i);
      eta_value_.push_back(v);
    }
    eta_r_.push_back(r);
    eta_pivot_.push_back(pivot);
    eta_start_.push_back(eta_index_.size());
    const auto added =
        static_cast<long long>(eta_index_.size() - before) + 1;
    eta_entries_since_factor_ += added;
    ++counters_.etas;
    counters_.eta_entries += added;
    return true;
  }

  bool should_refactorize() const override {
    // Refactorize once applying the eta file costs about as much as the
    // triangular solves themselves.
    return eta_entries_since_factor_ > std::max<long long>(512, 2 * lu_entries_);
  }

 private:
  static void row_pat_push(std::vector<std::vector<int>>& row_pat, int row,
                           int col) {
    row_pat[static_cast<std::size_t>(row)].push_back(col);
  }

  int m_;
  double pivot_tol_;
  // Factorization scratch: per-step factor entries in original coordinates,
  // flattened below after the step->coordinate remap.
  std::vector<std::vector<Entry>> l_cols_;  // per step: (orig row, multiplier)
  std::vector<std::vector<Entry>> u_rows_;  // per step: (basis pos, value)
  // Flattened factors in elimination-step coordinates (the solve-side form).
  std::vector<std::size_t> l_start_, u_start_;  // m_+1 offsets each
  std::vector<int> l_index_, u_index_;
  std::vector<double> l_value_, u_value_;
  std::vector<double> u_diag_;
  std::vector<int> row_of_step_, step_of_row_;
  std::vector<int> pos_of_step_, step_of_pos_;
  // Product-form eta file, flattened: eta q occupies entry range
  // [eta_start_[q], eta_start_[q+1]).
  std::vector<int> eta_r_;
  std::vector<double> eta_pivot_;
  std::vector<std::size_t> eta_start_{0};
  std::vector<int> eta_index_;
  std::vector<double> eta_value_;
  long long lu_entries_ = 0;
  long long eta_entries_since_factor_ = 0;
  std::vector<double> work_vals_;
  std::vector<int> work_mark_;
  int stamp_ = 0;
  std::vector<double> dense_kernel_;  // column-major scratch, dense path only
  mutable std::vector<double> scratch_;
};

// ---------------------------------------------------------------------------
// Dense explicit inverse (legacy path).

class DenseInverseBasis final : public BasisFactorization {
 public:
  DenseInverseBasis(int rows, double pivot_tol)
      : m_(rows), pivot_tol_(pivot_tol) {}

  bool factorize(const std::vector<SparseColumn>& columns,
                 const std::vector<int>& basis) override {
    const std::size_t mm = static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_);
    std::vector<double> b_mat(mm, 0.0);
    for (int k = 0; k < m_; ++k) {
      const SparseColumn& col =
          columns[static_cast<std::size_t>(basis[static_cast<std::size_t>(k)])];
      for (std::size_t e = 0; e < col.rows.size(); ++e) {
        b_mat[static_cast<std::size_t>(col.rows[e]) * static_cast<std::size_t>(m_) +
              static_cast<std::size_t>(k)] = col.coefs[e];
      }
    }
    std::vector<double> inv(mm, 0.0);
    for (int i = 0; i < m_; ++i) {
      inv[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) +
          static_cast<std::size_t>(i)] = 1.0;
    }
    auto at = [this](std::vector<double>& mat, int r, int c) -> double& {
      return mat[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(c)];
    };
    // Gauss-Jordan with partial pivoting; inv rows mirror the row ops, so B
    // columns land on rows of inv in basis-position order (ftran/btran below
    // rely on row k of inv being e_k^T B^-1).
    for (int col = 0; col < m_; ++col) {
      int piv = col;
      double best = std::abs(at(b_mat, col, col));
      for (int r = col + 1; r < m_; ++r) {
        const double candidate = std::abs(at(b_mat, r, col));
        if (candidate > best) {
          best = candidate;
          piv = r;
        }
      }
      if (best < pivot_tol_) return false;
      if (piv != col) {
        for (int c = 0; c < m_; ++c) {
          std::swap(at(b_mat, piv, c), at(b_mat, col, c));
          std::swap(at(inv, piv, c), at(inv, col, c));
        }
      }
      const double scale = 1.0 / at(b_mat, col, col);
      for (int c = 0; c < m_; ++c) {
        at(b_mat, col, c) *= scale;
        at(inv, col, c) *= scale;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double factor = at(b_mat, r, col);
        if (factor == 0.0) continue;
        for (int c = 0; c < m_; ++c) {
          at(b_mat, r, c) -= factor * at(b_mat, col, c);
          at(inv, r, c) -= factor * at(inv, col, c);
        }
      }
    }
    binv_ = std::move(inv);
    ++counters_.refactorizations;
    counters_.factor_entries = static_cast<long long>(mm);
    return true;
  }

  void ftran(std::vector<double>& x) const override {
    scratch_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const double v = x[static_cast<std::size_t>(i)];
      if (v == 0.0) continue;
      const double* col = &binv_[static_cast<std::size_t>(i)];
      for (int k = 0; k < m_; ++k) {
        scratch_[static_cast<std::size_t>(k)] +=
            binv_[static_cast<std::size_t>(k) * static_cast<std::size_t>(m_) +
                  static_cast<std::size_t>(i)] * v;
      }
      (void)col;
    }
    x = scratch_;
  }

  void btran(std::vector<double>& x) const override {
    scratch_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int k = 0; k < m_; ++k) {
      const double ck = x[static_cast<std::size_t>(k)];
      if (ck == 0.0) continue;
      const double* row =
          &binv_[static_cast<std::size_t>(k) * static_cast<std::size_t>(m_)];
      for (int i = 0; i < m_; ++i) {
        scratch_[static_cast<std::size_t>(i)] += ck * row[i];
      }
    }
    x = scratch_;
  }

  bool update(const std::vector<double>& w, int r) override {
    const double pivot = w[static_cast<std::size_t>(r)];
    if (!(std::abs(pivot) > pivot_tol_)) return false;
    double* pivot_row = &binv_[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_)];
    const double inv_pivot = 1.0 / pivot;
    for (int c = 0; c < m_; ++c) pivot_row[c] *= inv_pivot;
    for (int k = 0; k < m_; ++k) {
      if (k == r) continue;
      const double factor = w[static_cast<std::size_t>(k)];
      if (factor == 0.0) continue;
      double* row = &binv_[static_cast<std::size_t>(k) * static_cast<std::size_t>(m_)];
      for (int c = 0; c < m_; ++c) row[c] -= factor * pivot_row[c];
    }
    ++counters_.etas;
    return true;
  }

  bool should_refactorize() const override { return false; }

 private:
  int m_;
  double pivot_tol_;
  std::vector<double> binv_;
  mutable std::vector<double> scratch_;
};

}  // namespace

bool TableauRowExtractor::load(int rows,
                               const std::vector<SparseColumn>& columns,
                               const std::vector<int>& basic_columns,
                               double pivot_tol) {
  rows_ = rows;
  rho_.assign(static_cast<std::size_t>(rows), 0.0);
  // The sparse LU path is always adequate here: extraction is read-only, so
  // the dense fallback's only advantage (cheap explicit-inverse updates)
  // never applies.
  engine_ = make_basis_factorization(rows, /*dense=*/false, pivot_tol);
  return engine_->factorize(columns, basic_columns);
}

const std::vector<double>& TableauRowExtractor::row_multipliers(int position) {
  std::fill(rho_.begin(), rho_.end(), 0.0);
  rho_[static_cast<std::size_t>(position)] = 1.0;
  engine_->btran(rho_);
  return rho_;
}

double TableauRowExtractor::row_coefficient(const std::vector<double>& rho,
                                            const SparseColumn& column) {
  double dot = 0.0;
  for (std::size_t e = 0; e < column.rows.size(); ++e) {
    dot += rho[static_cast<std::size_t>(column.rows[e])] * column.coefs[e];
  }
  return dot;
}

std::unique_ptr<BasisFactorization> make_basis_factorization(int rows,
                                                             bool dense,
                                                             double pivot_tol) {
  if (dense) return std::make_unique<DenseInverseBasis>(rows, pivot_tol);
  return std::make_unique<SparseLuBasis>(rows, pivot_tol);
}

}  // namespace etransform::lp
