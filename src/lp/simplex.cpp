#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/logging.h"
#include "lp/simplex_core.h"
#include "telemetry/trace.h"

namespace etransform::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration_limit";
    case SolveStatus::kTimeLimit: return "time_limit";
    case SolveStatus::kCancelled: return "cancelled";
    case SolveStatus::kNumericalError: return "numerical_error";
  }
  return "?";
}

const char* to_string(SolveMode mode) {
  switch (mode) {
    case SolveMode::kPrimal: return "primal";
    case SolveMode::kDual: return "dual";
    case SolveMode::kAuto: return "auto";
  }
  return "?";
}

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

PreparedLp::PreparedLp(const Model& m) : model(&m) {
  m.validate();
  num_vars = m.num_variables();
  sense_sign = m.sense() == Sense::kMinimize ? 1.0 : -1.0;
  columns.resize(static_cast<std::size_t>(num_vars));
  cost.assign(static_cast<std::size_t>(num_vars), 0.0);
  for (const Term& t : merge_terms(m.objective())) {
    cost[static_cast<std::size_t>(t.var)] = sense_sign * t.coef;
  }
  row_of_model_row.assign(static_cast<std::size_t>(m.num_constraints()), -1);
  for (int i = 0; i < m.num_constraints(); ++i) {
    const Constraint& row = m.constraint(i);
    const std::vector<Term> terms = merge_terms(row.terms);
    bool empty = true;
    for (const Term& t : terms) {
      if (t.coef != 0.0) {
        empty = false;
        break;
      }
    }
    const double b = row.rhs;
    bool violated_when_empty = false;
    switch (row.relation) {
      case Relation::kLessEqual:
        if (b == kInf) continue;  // vacuous
        if (b == -kInf) {
          trivially_infeasible = true;
          infeasibility_note = "row '" + row.name + "' requires <= -inf";
          return;
        }
        violated_when_empty = 0.0 > b;
        break;
      case Relation::kGreaterEqual:
        if (b == -kInf) continue;  // vacuous
        if (b == kInf) {
          trivially_infeasible = true;
          infeasibility_note = "row '" + row.name + "' requires >= +inf";
          return;
        }
        violated_when_empty = 0.0 < b;
        break;
      case Relation::kEqual:
        if (!std::isfinite(b)) {
          trivially_infeasible = true;
          infeasibility_note = "row '" + row.name + "' requires == +-inf";
          return;
        }
        violated_when_empty = std::abs(b) > 1e-9;
        break;
    }
    if (empty) {
      if (violated_when_empty) {
        trivially_infeasible = true;
        infeasibility_note = "empty row '" + row.name + "' is violated";
        return;
      }
      continue;
    }
    const int r = num_rows();
    row_of_model_row[static_cast<std::size_t>(i)] = r;
    for (const Term& t : terms) {
      if (t.coef == 0.0) continue;
      columns[static_cast<std::size_t>(t.var)].rows.push_back(r);
      columns[static_cast<std::size_t>(t.var)].coefs.push_back(t.coef);
    }
    rhs.push_back(b);
    switch (row.relation) {
      case Relation::kLessEqual:
        slack_lower.push_back(0.0);
        slack_upper.push_back(kInf);
        break;
      case Relation::kGreaterEqual:
        slack_lower.push_back(-kInf);
        slack_upper.push_back(0.0);
        break;
      case Relation::kEqual:
        slack_lower.push_back(0.0);
        slack_upper.push_back(0.0);
        break;
    }
  }
  // Slack columns: row r gets internal column num_vars + r with coefficient
  // +1, making every row an equality. Because slack bounds — not structure —
  // encode the relation, the whole layout is independent of variable bounds.
  for (int r = 0; r < num_rows(); ++r) {
    SparseColumn s;
    s.rows.push_back(r);
    s.coefs.push_back(1.0);
    columns.push_back(std::move(s));
    cost.push_back(0.0);
  }
}

namespace detail {

RevisedSimplex::RevisedSimplex(const PreparedLp& prep,
                               const SimplexOptions& options, SolveContext& ctx)
    : prep_(prep),
      options_(options),
      ctx_(ctx),
      m_(prep.num_rows()),
      n_(prep.num_columns()),
      lower_(static_cast<std::size_t>(n_), 0.0),
      upper_(static_cast<std::size_t>(n_), 0.0),
      status_(static_cast<std::size_t>(n_), BasisVarStatus::kAtLower),
      value_(static_cast<std::size_t>(n_), 0.0),
      basis_(static_cast<std::size_t>(m_), -1),
      gamma_(static_cast<std::size_t>(n_), 1.0) {}

bool RevisedSimplex::set_bounds(const std::vector<double>& lo,
                                const std::vector<double>& up) {
  double scale = 1.0;
  for (int j = 0; j < prep_.num_vars; ++j) {
    const double l = lo[static_cast<std::size_t>(j)];
    const double u = up[static_cast<std::size_t>(j)];
    if (l > u) return false;
    lower_[static_cast<std::size_t>(j)] = l;
    upper_[static_cast<std::size_t>(j)] = u;
    if (std::isfinite(l)) scale = std::max(scale, std::abs(l));
    if (std::isfinite(u)) scale = std::max(scale, std::abs(u));
  }
  for (int r = 0; r < m_; ++r) {
    lower_[static_cast<std::size_t>(prep_.num_vars + r)] =
        prep_.slack_lower[static_cast<std::size_t>(r)];
    upper_[static_cast<std::size_t>(prep_.num_vars + r)] =
        prep_.slack_upper[static_cast<std::size_t>(r)];
    scale = std::max(scale, std::abs(prep_.rhs[static_cast<std::size_t>(r)]));
  }
  ftol_ = options_.feasibility_tol * scale;
  return true;
}

SolveStatus RevisedSimplex::run(const BasisSnapshot* warm, bool try_dual) {
  engine_ = make_basis_factorization(m_, options_.use_dense_fallback,
                                     options_.pivot_tol);
  // Small lists win empirically: Devex quality saturates around a few
  // dozen candidates while re-pricing cost keeps growing with the list.
  list_size_ = options_.candidate_list_size > 0
                   ? options_.candidate_list_size
                   : std::clamp(n_ / 32, 8, 32);
  bool warm_ok = warm != nullptr && apply_snapshot(*warm);
  if (!warm_ok) init_slack_basis();
  if (!refactorize()) {
    if (warm_ok) {
      warm_ok = false;
      init_slack_basis();
    }
    if (!refactorize()) return SolveStatus::kNumericalError;
  }
  warm_started_ = warm_ok;

  // A warm basis that failed to apply (structural mismatch) voids any
  // reoptimization claim — don't pivot dual from the slack fallback unless
  // the caller asked for dual with no snapshot at all (SolveMode::kDual).
  if (try_dual && (warm == nullptr || warm_ok) && dual_start_feasible()) {
    used_dual_ = true;
    SolveStatus s;
    {
      const telemetry::TraceSpan span(ctx_.trace(), "lp", "simplex.dual");
      s = iterate_dual();
    }
    if (s != SolveStatus::kOptimal && !dual_abandoned_) return s;
    // kOptimal: the basis is primal feasible; the phase-2 loop below merely
    // certifies optimality against the unperturbed costs (usually 0 pivots).
    // dual_abandoned_: the dual loop retreated (singular-basis recovery or
    // an unusable pivot); the primal phases repair from the current point.
  }

  while (true) {
    restart_phase1_ = false;
    if (has_infeasible_basic()) {
      phase1_ = true;
      const int before = iterations_;
      SolveStatus s;
      {
        const telemetry::TraceSpan span(ctx_.trace(), "lp", "simplex.phase1");
        s = iterate();
      }
      phase1_ = false;
      if (restart_phase1_) {
        if (recoveries_ > kMaxRecoveries) return SolveStatus::kNumericalError;
        continue;
      }
      if (s != SolveStatus::kOptimal) {
        return s == SolveStatus::kUnbounded ? SolveStatus::kInfeasible : s;
      }
      fire_phase_event(1, iterations_ - before, total_infeasibility());
      if (has_infeasible_basic()) return SolveStatus::kInfeasible;
    }
    const int before = iterations_;
    SolveStatus s;
    {
      const telemetry::TraceSpan span(ctx_.trace(), "lp", "simplex.phase2");
      s = iterate();
    }
    if (restart_phase1_) {
      if (recoveries_ > kMaxRecoveries) return SolveStatus::kNumericalError;
      continue;
    }
    if (s == SolveStatus::kOptimal) {
      fire_phase_event(2, iterations_ - before, internal_objective());
    }
    return s;
  }
}

double RevisedSimplex::internal_objective() const {
  double total = 0.0;
  for (int j = 0; j < prep_.num_vars; ++j) {
    total += prep_.cost[static_cast<std::size_t>(j)] *
             value_[static_cast<std::size_t>(j)];
  }
  return total;
}

std::vector<double> RevisedSimplex::row_duals() const {
  std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) {
    y[static_cast<std::size_t>(k)] =
        prep_.cost[static_cast<std::size_t>(basis_[static_cast<std::size_t>(k)])];
  }
  engine_->btran(y);
  return y;
}

BasisSnapshot RevisedSimplex::snapshot() const {
  BasisSnapshot snap;
  snap.basic_columns = basis_;
  snap.column_status = status_;
  return snap;
}

void RevisedSimplex::fire_phase_event(int phase, int pivots, double objective) {
  if (!ctx_.events.on_simplex_phase) return;
  SimplexPhaseEvent event;
  event.phase = phase;
  event.pivots = pivots;
  event.objective = objective;
  ctx_.events.on_simplex_phase(event);
}

/// All slacks basic, structural columns on their nearest finite bound.
void RevisedSimplex::init_slack_basis() {
  for (int j = 0; j < prep_.num_vars; ++j) {
    status_[static_cast<std::size_t>(j)] = default_nonbasic_status(j);
  }
  for (int r = 0; r < m_; ++r) {
    const int s = prep_.num_vars + r;
    basis_[static_cast<std::size_t>(r)] = s;
    status_[static_cast<std::size_t>(s)] = BasisVarStatus::kBasic;
  }
}

BasisVarStatus RevisedSimplex::default_nonbasic_status(int j) const {
  if (std::isfinite(lower_[static_cast<std::size_t>(j)])) {
    return BasisVarStatus::kAtLower;
  }
  if (std::isfinite(upper_[static_cast<std::size_t>(j)])) {
    return BasisVarStatus::kAtUpper;
  }
  return BasisVarStatus::kFree;
}

/// Installs a snapshot, re-clamping nonbasic statuses to the current
/// bounds. Returns false when structurally incompatible.
bool RevisedSimplex::apply_snapshot(const BasisSnapshot& snap) {
  if (snap.basic_columns.size() != static_cast<std::size_t>(m_) ||
      snap.column_status.size() != static_cast<std::size_t>(n_)) {
    return false;
  }
  std::vector<char> in_basis(static_cast<std::size_t>(n_), 0);
  for (const int c : snap.basic_columns) {
    if (c < 0 || c >= n_ || in_basis[static_cast<std::size_t>(c)]) {
      return false;
    }
    in_basis[static_cast<std::size_t>(c)] = 1;
  }
  basis_ = snap.basic_columns;
  for (int j = 0; j < n_; ++j) {
    if (in_basis[static_cast<std::size_t>(j)]) {
      status_[static_cast<std::size_t>(j)] = BasisVarStatus::kBasic;
      continue;
    }
    const bool lo_ok = std::isfinite(lower_[static_cast<std::size_t>(j)]);
    const bool up_ok = std::isfinite(upper_[static_cast<std::size_t>(j)]);
    BasisVarStatus s = snap.column_status[static_cast<std::size_t>(j)];
    switch (s) {
      case BasisVarStatus::kAtLower:
        s = lo_ok ? BasisVarStatus::kAtLower
                  : (up_ok ? BasisVarStatus::kAtUpper : BasisVarStatus::kFree);
        break;
      case BasisVarStatus::kAtUpper:
        s = up_ok ? BasisVarStatus::kAtUpper
                  : (lo_ok ? BasisVarStatus::kAtLower : BasisVarStatus::kFree);
        break;
      case BasisVarStatus::kBasic:  // stale marker; fall through to default
      case BasisVarStatus::kFree:
        s = lo_ok ? BasisVarStatus::kAtLower
                  : (up_ok ? BasisVarStatus::kAtUpper : BasisVarStatus::kFree);
        break;
    }
    status_[static_cast<std::size_t>(j)] = s;
  }
  return true;
}

double RevisedSimplex::nonbasic_resting_value(int j) const {
  switch (status_[static_cast<std::size_t>(j)]) {
    case BasisVarStatus::kAtLower: return lower_[static_cast<std::size_t>(j)];
    case BasisVarStatus::kAtUpper: return upper_[static_cast<std::size_t>(j)];
    default: return 0.0;  // kFree rests at 0; kBasic never queried
  }
}

/// x_B = B^-1 (b - sum of nonbasic columns at their resting values).
void RevisedSimplex::recompute_values() {
  work_ = prep_.rhs;
  for (int j = 0; j < n_; ++j) {
    if (status_[static_cast<std::size_t>(j)] == BasisVarStatus::kBasic) {
      continue;
    }
    const double v = nonbasic_resting_value(j);
    value_[static_cast<std::size_t>(j)] = v;
    if (v == 0.0) continue;
    const SparseColumn& col = prep_.columns[static_cast<std::size_t>(j)];
    for (std::size_t e = 0; e < col.rows.size(); ++e) {
      work_[static_cast<std::size_t>(col.rows[e])] -= col.coefs[e] * v;
    }
  }
  engine_->ftran(work_);
  for (int k = 0; k < m_; ++k) {
    value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(k)])] =
        work_[static_cast<std::size_t>(k)];
  }
}

/// Factorizes the current basis and recomputes values. False on singular.
bool RevisedSimplex::refactorize() {
  const telemetry::TraceSpan span(ctx_.trace(), "lp", "simplex.factorize");
  if (!engine_->factorize(prep_.columns, basis_)) return false;
  pivots_since_refactor_ = 0;
  recompute_values();
  return true;
}

/// Refactorizes; on a singular basis falls back to the slack basis (every
/// row owns a +1 slack, so it always factorizes) and flags a phase-1
/// restart. Returns false only when the caller must report
/// kNumericalError.
bool RevisedSimplex::refactorize_or_recover() {
  if (refactorize()) return true;
  ++recoveries_;
  if (recoveries_ > kMaxRecoveries) return false;
  ET_LOG(kDebug) << "simplex: singular basis, slack-basis recovery #"
                 << recoveries_;
  init_slack_basis();
  if (!refactorize()) return false;
  candidates_.clear();
  std::fill(gamma_.begin(), gamma_.end(), 1.0);
  restart_phase1_ = true;
  return true;
}

double RevisedSimplex::violation(int col) const {
  const double xv = value_[static_cast<std::size_t>(col)];
  const double over = xv - upper_[static_cast<std::size_t>(col)];
  if (over > 0.0) return over;
  const double under = lower_[static_cast<std::size_t>(col)] - xv;
  return under > 0.0 ? under : 0.0;
}

bool RevisedSimplex::has_infeasible_basic() const {
  for (int k = 0; k < m_; ++k) {
    if (violation(basis_[static_cast<std::size_t>(k)]) > ftol_) return true;
  }
  return false;
}

double RevisedSimplex::total_infeasibility() const {
  double total = 0.0;
  for (int k = 0; k < m_; ++k) {
    total += violation(basis_[static_cast<std::size_t>(k)]);
  }
  return total;
}

/// Phase-1 composite cost of a basic column: the sign pushing it back
/// inside its bounds (0 when feasible).
double RevisedSimplex::phase1_cost(int col) const {
  const double xv = value_[static_cast<std::size_t>(col)];
  if (xv > upper_[static_cast<std::size_t>(col)] + ftol_) return 1.0;
  if (xv < lower_[static_cast<std::size_t>(col)] - ftol_) return -1.0;
  return 0.0;
}

/// y = B^-T c_B for the current phase (row-indexed output).
void RevisedSimplex::compute_duals(std::vector<double>& y) const {
  y.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) {
    const int b = basis_[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(k)] =
        phase1_ ? phase1_cost(b) : prep_.cost[static_cast<std::size_t>(b)];
  }
  engine_->btran(y);
}

double RevisedSimplex::reduced_cost(int j, const std::vector<double>& y) const {
  // Nonbasic columns rest inside their bounds, so their phase-1 cost is 0.
  double d = phase1_ ? 0.0 : prep_.cost[static_cast<std::size_t>(j)];
  const SparseColumn& col = prep_.columns[static_cast<std::size_t>(j)];
  for (std::size_t e = 0; e < col.rows.size(); ++e) {
    d -= y[static_cast<std::size_t>(col.rows[e])] * col.coefs[e];
  }
  return d;
}

/// Direction the column may profitably move in (+1 up from lower, -1 down
/// from upper, 0 not attractive) under tolerance `tol`.
double RevisedSimplex::attractive_dir(int j, double d, double tol) const {
  switch (status_[static_cast<std::size_t>(j)]) {
    case BasisVarStatus::kAtLower:
      return (d < -tol &&
              upper_[static_cast<std::size_t>(j)] >
                  lower_[static_cast<std::size_t>(j)])
                 ? 1.0
                 : 0.0;
    case BasisVarStatus::kAtUpper:
      return (d > tol &&
              upper_[static_cast<std::size_t>(j)] >
                  lower_[static_cast<std::size_t>(j)])
                 ? -1.0
                 : 0.0;
    case BasisVarStatus::kFree:
      if (d < -tol) return 1.0;
      if (d > tol) return -1.0;
      return 0.0;
    case BasisVarStatus::kBasic: return 0.0;
  }
  return 0.0;
}

/// Full scan: Bland (lowest attractive index) or Dantzig (largest |d|).
void RevisedSimplex::price_full_scan(const std::vector<double>& y, bool bland,
                                     double tol, int& entering,
                                     double& entering_dir) const {
  entering = -1;
  entering_dir = 0.0;
  double best_score = 0.0;
  for (int j = 0; j < n_; ++j) {
    if (status_[static_cast<std::size_t>(j)] == BasisVarStatus::kBasic) {
      continue;
    }
    const double d = reduced_cost(j, y);
    const double dir = attractive_dir(j, d, tol);
    if (dir == 0.0) continue;
    if (bland) {
      entering = j;
      entering_dir = dir;
      return;
    }
    const double score = std::abs(d);
    if (score > best_score) {
      best_score = score;
      entering = j;
      entering_dir = dir;
    }
  }
}

/// Re-prices the candidate list with fresh reduced costs, dropping stale
/// entries, and picks the best Devex score d^2 / gamma.
void RevisedSimplex::price_candidates(const std::vector<double>& y,
                                      int& entering, double& entering_dir) {
  entering = -1;
  entering_dir = 0.0;
  double best_score = 0.0;
  std::size_t keep = 0;
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    const int j = candidates_[c];
    if (status_[static_cast<std::size_t>(j)] == BasisVarStatus::kBasic) {
      continue;
    }
    const double d = reduced_cost(j, y);
    const double dir = attractive_dir(j, d, options_.optimality_tol);
    if (dir == 0.0) continue;
    candidates_[keep++] = j;
    const double score = d * d / gamma_[static_cast<std::size_t>(j)];
    if (score > best_score) {
      best_score = score;
      entering = j;
      entering_dir = dir;
    }
  }
  candidates_.resize(keep);
}

/// Refills the candidate list scanning from the rotating cursor; stops
/// once full or after a complete sweep (the latter is the full scan that
/// licenses an optimality claim).
void RevisedSimplex::rebuild_candidates(const std::vector<double>& y) {
  candidates_.clear();
  int scanned = 0;
  for (; scanned < n_; ++scanned) {
    const int j = cursor_;
    cursor_ = cursor_ + 1 == n_ ? 0 : cursor_ + 1;
    if (status_[static_cast<std::size_t>(j)] == BasisVarStatus::kBasic) {
      continue;
    }
    const double d = reduced_cost(j, y);
    if (attractive_dir(j, d, options_.optimality_tol) == 0.0) continue;
    candidates_.push_back(j);
    if (static_cast<int>(candidates_.size()) >= list_size_) break;
  }
}

/// Devex-style reference weight update after pivoting `entering` into
/// position `r` (w = B^-1 a_entering before the basis changed). Expects
/// rho_ = B^-T e_r for the pre-pivot basis, computed by the caller (the
/// same vector drives the incremental dual update).
void RevisedSimplex::devex_update(int entering, int leaving, int r,
                                  const std::vector<double>& w) {
  const double alpha_q = w[static_cast<std::size_t>(r)];
  if (alpha_q == 0.0) return;
  const double gq = gamma_[static_cast<std::size_t>(entering)];
  double max_gamma = 0.0;
  for (const int j : candidates_) {
    if (j == entering) continue;
    const SparseColumn& col = prep_.columns[static_cast<std::size_t>(j)];
    double alpha = 0.0;
    for (std::size_t e = 0; e < col.rows.size(); ++e) {
      alpha += rho_[static_cast<std::size_t>(col.rows[e])] * col.coefs[e];
    }
    const double ratio = alpha / alpha_q;
    double& g = gamma_[static_cast<std::size_t>(j)];
    g = std::max(g, ratio * ratio * gq);
    max_gamma = std::max(max_gamma, g);
  }
  gamma_[static_cast<std::size_t>(leaving)] =
      std::max(gq / (alpha_q * alpha_q), 1.0);
  if (max_gamma > 1e7) std::fill(gamma_.begin(), gamma_.end(), 1.0);
}

/// Cooperative interruption: cancellation wins over the deadline.
SolveStatus RevisedSimplex::interruption_status() const {
  if (ctx_.cancelled()) return SolveStatus::kCancelled;
  if (ctx_.deadline().expired()) return SolveStatus::kTimeLimit;
  return SolveStatus::kOptimal;  // sentinel: keep going
}

/// Main pivot loop for the current phase. kOptimal means "no improving
/// direction for this phase's objective" (run() interprets it); a
/// restart_phase1_ flag set underneath also returns kOptimal so run() can
/// re-enter phase 1 after a slack-basis recovery.
SolveStatus RevisedSimplex::iterate() {
  std::fill(gamma_.begin(), gamma_.end(), 1.0);  // fresh Devex reference
  candidates_.clear();
  int degenerate_run = 0;
  bool use_bland = false;
  // In phase 2 under Devex pricing the duals are maintained
  // incrementally across pivots (one O(m) axpy per pivot instead of a
  // btran); this flag marks y_ stale after any event that breaks the
  // incremental chain (refactorization, bound flips in phase 1, Bland).
  bool duals_valid = false;
  int pivots_since_poll = options_.refactor_interval;  // poll on entry
  while (true) {
    if (iterations_ >= options_.max_iterations) {
      return SolveStatus::kIterationLimit;
    }
    // Deadline/cancellation poll, every refactor_interval pivots. Bounds
    // how long past its budget one LP can run to one refactorization
    // interval of pivot work.
    if (pivots_since_poll >= options_.refactor_interval) {
      pivots_since_poll = 0;
      const SolveStatus interrupted = interruption_status();
      if (interrupted != SolveStatus::kOptimal) return interrupted;
    }
    ++pivots_since_poll;
    if (phase1_ && !has_infeasible_basic()) return SolveStatus::kOptimal;

    const bool full_scan_mode =
        use_bland || options_.pricing == PricingRule::kDantzig;
    // Phase-1 costs change as basics regain feasibility and Bland needs
    // exact signs, so both recompute duals from scratch every iteration.
    if (!duals_valid || phase1_ || full_scan_mode) {
      compute_duals(y_);
      duals_valid = true;
    }

    int entering = -1;
    double entering_dir = 0.0;
    if (full_scan_mode) {
      price_full_scan(y_, use_bland, options_.optimality_tol, entering,
                      entering_dir);
      ++full_scans_;
    } else {
      price_candidates(y_, entering, entering_dir);
      if (entering >= 0) {
        ++candidate_hits_;
      } else {
        rebuild_candidates(y_);
        ++full_scans_;
        price_candidates(y_, entering, entering_dir);
      }
    }

    if (entering < 0) {
      // No attractive column. Guard the optimality claim against drift:
      // refactorize and re-scan (with a relaxed tolerance) once.
      if (pivots_since_refactor_ > 0) {
        if (!refactorize_or_recover()) return SolveStatus::kNumericalError;
        if (restart_phase1_) return SolveStatus::kOptimal;
        compute_duals(y_);
        price_full_scan(y_, false, 10 * options_.optimality_tol, entering,
                        entering_dir);
        ++full_scans_;
        if (entering < 0) return SolveStatus::kOptimal;
      } else {
        return SolveStatus::kOptimal;
      }
    }

    // Reduced cost of the entering column under the current duals; feeds
    // the incremental dual update after the pivot.
    const double d_entering = reduced_cost(entering, y_);

    // Direction w = B^-1 a_entering (basis-position-indexed).
    w_.assign(static_cast<std::size_t>(m_), 0.0);
    const SparseColumn& acol =
        prep_.columns[static_cast<std::size_t>(entering)];
    for (std::size_t e = 0; e < acol.rows.size(); ++e) {
      w_[static_cast<std::size_t>(acol.rows[e])] = acol.coefs[e];
    }
    engine_->ftran(w_);

    // Ratio test. The entering variable moves by t in direction
    // entering_dir; basic k changes by -t * entering_dir * w[k]. In phase
    // 1, infeasible basics additionally break at their violated bound
    // (where they turn feasible and the cost gradient changes).
    double t_max = upper_[static_cast<std::size_t>(entering)] -
                   lower_[static_cast<std::size_t>(entering)];  // bound flip
    int leaving_row = -1;
    BasisVarStatus leaving_status = BasisVarStatus::kAtLower;
    for (int k = 0; k < m_; ++k) {
      const double delta = -entering_dir * w_[static_cast<std::size_t>(k)];
      if (std::abs(delta) < options_.pivot_tol) continue;
      const int basic = basis_[static_cast<std::size_t>(k)];
      const double xv = value_[static_cast<std::size_t>(basic)];
      const double lo = lower_[static_cast<std::size_t>(basic)];
      const double up = upper_[static_cast<std::size_t>(basic)];
      double limit;
      BasisVarStatus hit;
      if (phase1_ && xv < lo - ftol_) {
        if (delta <= 0.0) continue;  // moving further below: no breakpoint
        limit = (lo - xv) / delta;
        hit = BasisVarStatus::kAtLower;
      } else if (phase1_ && xv > up + ftol_) {
        if (delta >= 0.0) continue;  // moving further above: no breakpoint
        limit = (xv - up) / (-delta);
        hit = BasisVarStatus::kAtUpper;
      } else if (delta < 0.0) {
        if (!std::isfinite(lo)) continue;
        limit = (xv - lo) / (-delta);
        hit = BasisVarStatus::kAtLower;
      } else {
        if (!std::isfinite(up)) continue;
        limit = (up - xv) / delta;
        hit = BasisVarStatus::kAtUpper;
      }
      if (limit < 0.0) limit = 0.0;  // numerical noise
      if (limit < t_max - 1e-12 || (leaving_row < 0 && limit <= t_max)) {
        t_max = limit;
        leaving_row = k;
        leaving_status = hit;
      }
    }
    if (!std::isfinite(t_max)) {
      return phase1_ ? SolveStatus::kInfeasible : SolveStatus::kUnbounded;
    }

    ++iterations_;
    if (phase1_) ++phase1_iterations_;
    if (t_max < 1e-10) {
      ++degenerate_run;
      ++degenerate_pivots_;
      if (degenerate_run > options_.degeneracy_threshold) use_bland = true;
    } else {
      degenerate_run = 0;
      use_bland = false;
    }

    // Apply the step to all basic values and the entering variable.
    const double step = t_max * entering_dir;
    if (step != 0.0) {
      for (int k = 0; k < m_; ++k) {
        value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(k)])] -=
            step * w_[static_cast<std::size_t>(k)];
      }
    }
    value_[static_cast<std::size_t>(entering)] += step;

    if (leaving_row < 0) {
      // Pure bound flip; basis unchanged. Snap exactly onto the bound.
      if (entering_dir > 0) {
        status_[static_cast<std::size_t>(entering)] = BasisVarStatus::kAtUpper;
        value_[static_cast<std::size_t>(entering)] =
            upper_[static_cast<std::size_t>(entering)];
      } else {
        status_[static_cast<std::size_t>(entering)] = BasisVarStatus::kAtLower;
        value_[static_cast<std::size_t>(entering)] =
            lower_[static_cast<std::size_t>(entering)];
      }
      continue;
    }

    // Pivot: `entering` replaces the basic variable of `leaving_row`.
    const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
    status_[static_cast<std::size_t>(leaving)] = leaving_status;
    value_[static_cast<std::size_t>(leaving)] =
        leaving_status == BasisVarStatus::kAtLower
            ? lower_[static_cast<std::size_t>(leaving)]
            : upper_[static_cast<std::size_t>(leaving)];
    status_[static_cast<std::size_t>(entering)] = BasisVarStatus::kBasic;
    basis_[static_cast<std::size_t>(leaving_row)] = entering;

    // One btran of e_r (against the pre-pivot factorization) serves both
    // the Devex weight update and the dual update
    //   y' = y + (d_entering / alpha_q) * B^-T e_r,
    // which keeps y_ consistent with the new basis without the per-pivot
    // btran of c_B.
    const double pivot = w_[static_cast<std::size_t>(leaving_row)];
    const bool need_devex = !full_scan_mode && !candidates_.empty();
    const bool update_duals = !phase1_ && !full_scan_mode &&
                              std::abs(pivot) >= options_.pivot_tol;
    if (need_devex || update_duals) {
      rho_.assign(static_cast<std::size_t>(m_), 0.0);
      rho_[static_cast<std::size_t>(leaving_row)] = 1.0;
      engine_->btran(rho_);  // row r of B^-1, row-indexed
    }
    if (update_duals) {
      const double mult = d_entering / pivot;
      for (int i = 0; i < m_; ++i) {
        y_[static_cast<std::size_t>(i)] +=
            mult * rho_[static_cast<std::size_t>(i)];
      }
    } else {
      duals_valid = false;
    }
    if (need_devex) devex_update(entering, leaving, leaving_row, w_);

    const bool updated = std::abs(pivot) >= options_.pivot_tol &&
                         engine_->update(w_, leaving_row);
    if (!updated || ++pivots_since_refactor_ >= options_.refactor_interval ||
        engine_->should_refactorize()) {
      if (!refactorize_or_recover()) return SolveStatus::kNumericalError;
      duals_valid = false;  // refresh duals from the new factorization
      if (restart_phase1_) return SolveStatus::kOptimal;
    }
  }
}

}  // namespace detail

}  // namespace etransform::lp
