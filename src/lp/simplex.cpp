#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/logging.h"

namespace etransform::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration_limit";
    case SolveStatus::kTimeLimit: return "time_limit";
    case SolveStatus::kCancelled: return "cancelled";
  }
  return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class VarStatus : unsigned char { kBasic, kAtLower, kAtUpper };

/// Column-sparse matrix column.
struct SparseColumn {
  std::vector<int> rows;
  std::vector<double> coefs;
};

/// How one model variable maps to internal (shifted, >=0) columns.
struct VarMap {
  int column = -1;        // primary internal column
  int negative_column = -1;  // second column for free variables (x = x+ - x-)
  double offset = 0.0;    // x_model = offset + sign * x_col (+ ...)
  double sign = 1.0;
};

/// The internal standard-form problem: min c.x, A x = b, 0 <= x <= ub.
struct StandardForm {
  std::vector<SparseColumn> columns;
  std::vector<double> upper;       // per column, may be +inf
  std::vector<double> cost;        // phase-2 cost per column
  std::vector<double> rhs;         // per row, >= 0 after normalization
  std::vector<int> artificial_of_row;  // column index of the row's initial
                                       // basic variable (slack or artificial)
  std::vector<bool> is_artificial;     // per column
  std::vector<double> row_dual_sign;   // map internal dual -> model dual
  std::vector<int> row_of_model_row;   // internal row index per model row, -1
                                       // if the row was dropped as vacuous
  std::vector<VarMap> var_maps;        // per model variable
  double objective_shift = 0.0;        // constant from bound shifting
  bool trivially_infeasible = false;
  std::string infeasibility_note;
};

/// Builds the internal standard form from a model plus bound overrides.
StandardForm build_standard_form(const Model& model,
                                 const std::vector<double>& lower,
                                 const std::vector<double>& upper) {
  const int n = model.num_variables();
  const int m = model.num_constraints();
  StandardForm sf;
  sf.var_maps.resize(static_cast<std::size_t>(n));

  const double sense_sign = model.sense() == Sense::kMinimize ? 1.0 : -1.0;
  std::vector<double> model_cost(static_cast<std::size_t>(n), 0.0);
  for (const Term& t : merge_terms(model.objective())) {
    model_cost[static_cast<std::size_t>(t.var)] = sense_sign * t.coef;
  }

  // 1. Variables: shift so every internal column lives in [0, ub].
  for (int j = 0; j < n; ++j) {
    const double lo = lower[static_cast<std::size_t>(j)];
    const double hi = upper[static_cast<std::size_t>(j)];
    if (lo > hi) {
      sf.trivially_infeasible = true;
      sf.infeasibility_note = "variable with lower > upper";
      return sf;
    }
    VarMap& vm = sf.var_maps[static_cast<std::size_t>(j)];
    if (std::isfinite(lo)) {
      vm.column = static_cast<int>(sf.columns.size());
      vm.offset = lo;
      vm.sign = 1.0;
      sf.columns.emplace_back();
      sf.upper.push_back(hi - lo);  // may be +inf
      sf.cost.push_back(model_cost[static_cast<std::size_t>(j)]);
      sf.objective_shift += model_cost[static_cast<std::size_t>(j)] * lo;
    } else if (std::isfinite(hi)) {
      // Only an upper bound: x = hi - x', x' >= 0.
      vm.column = static_cast<int>(sf.columns.size());
      vm.offset = hi;
      vm.sign = -1.0;
      sf.columns.emplace_back();
      sf.upper.push_back(kInf);
      sf.cost.push_back(-model_cost[static_cast<std::size_t>(j)]);
      sf.objective_shift += model_cost[static_cast<std::size_t>(j)] * hi;
    } else {
      // Free: x = x+ - x-.
      vm.column = static_cast<int>(sf.columns.size());
      vm.negative_column = vm.column + 1;
      vm.offset = 0.0;
      vm.sign = 1.0;
      sf.columns.emplace_back();
      sf.columns.emplace_back();
      sf.upper.push_back(kInf);
      sf.upper.push_back(kInf);
      sf.cost.push_back(model_cost[static_cast<std::size_t>(j)]);
      sf.cost.push_back(-model_cost[static_cast<std::size_t>(j)]);
    }
  }
  const int num_structural = static_cast<int>(sf.columns.size());
  sf.is_artificial.assign(static_cast<std::size_t>(num_structural), false);

  // 2. Rows: shift rhs, flip >= to <=, drop vacuous rows, detect trivially
  //    impossible ones.
  struct PendingRow {
    std::vector<Term> internal_terms;  // on internal columns
    bool is_equality = false;
    double rhs = 0.0;
    double dual_sign = 1.0;
    int model_row = 0;
  };
  std::vector<PendingRow> pending;
  sf.row_of_model_row.assign(static_cast<std::size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    const Constraint& row = model.constraint(i);
    double shift = 0.0;
    std::vector<Term> internal;
    internal.reserve(row.terms.size() * 2);
    for (const Term& t : merge_terms(row.terms)) {
      const VarMap& vm = sf.var_maps[static_cast<std::size_t>(t.var)];
      shift += t.coef * vm.offset;
      internal.push_back(Term{vm.column, t.coef * vm.sign});
      if (vm.negative_column >= 0) {
        internal.push_back(Term{vm.negative_column, -t.coef});
      }
    }
    double rhs = row.rhs - shift;
    Relation rel = row.relation;
    double dual_sign = 1.0;
    if (rel == Relation::kGreaterEqual) {
      for (auto& t : internal) t.coef = -t.coef;
      rhs = -rhs;
      rel = Relation::kLessEqual;
      dual_sign = -1.0;
    }
    if (rel == Relation::kLessEqual) {
      if (rhs == kInf) continue;  // vacuous
      if (rhs == -kInf) {
        sf.trivially_infeasible = true;
        sf.infeasibility_note = "row '" + row.name + "' requires <= -inf";
        return sf;
      }
      if (internal.empty()) {
        if (0.0 > rhs) {
          sf.trivially_infeasible = true;
          sf.infeasibility_note = "empty row '" + row.name + "' is violated";
          return sf;
        }
        continue;
      }
    } else {  // equality
      if (internal.empty()) {
        if (std::abs(rhs) > 1e-9) {
          sf.trivially_infeasible = true;
          sf.infeasibility_note = "empty row '" + row.name + "' is violated";
          return sf;
        }
        continue;
      }
    }
    PendingRow pr;
    pr.internal_terms = std::move(internal);
    pr.is_equality = (rel == Relation::kEqual);
    pr.rhs = rhs;
    pr.dual_sign = dual_sign;
    pr.model_row = i;
    pending.push_back(std::move(pr));
  }

  // 3. Materialize rows: add slacks for inequalities, normalize rhs >= 0,
  //    add artificials where the slack cannot start basic-feasible.
  const int rows = static_cast<int>(pending.size());
  sf.rhs.resize(static_cast<std::size_t>(rows));
  sf.row_dual_sign.resize(static_cast<std::size_t>(rows));
  sf.artificial_of_row.resize(static_cast<std::size_t>(rows));
  auto add_entry = [&sf](int col, int row, double coef) {
    sf.columns[static_cast<std::size_t>(col)].rows.push_back(row);
    sf.columns[static_cast<std::size_t>(col)].coefs.push_back(coef);
  };
  for (int r = 0; r < rows; ++r) {
    PendingRow& pr = pending[static_cast<std::size_t>(r)];
    sf.row_of_model_row[static_cast<std::size_t>(pr.model_row)] = r;
    // A slack (for <=) keeps its +1 coefficient; if rhs < 0 we flip the whole
    // row afterwards, making the slack coefficient -1 and unusable as the
    // initial basic variable, in which case an artificial takes over.
    int slack_col = -1;
    if (!pr.is_equality) {
      slack_col = static_cast<int>(sf.columns.size());
      sf.columns.emplace_back();
      sf.upper.push_back(kInf);
      sf.cost.push_back(0.0);
      sf.is_artificial.push_back(false);
      pr.internal_terms.push_back(Term{slack_col, 1.0});
    }
    double flip = 1.0;
    if (pr.rhs < 0.0) flip = -1.0;
    for (const Term& t : merge_terms(std::move(pr.internal_terms))) {
      add_entry(t.var, r, flip * t.coef);
    }
    sf.rhs[static_cast<std::size_t>(r)] = flip * pr.rhs;
    sf.row_dual_sign[static_cast<std::size_t>(r)] = pr.dual_sign * flip;
    const bool slack_usable = (slack_col >= 0 && flip > 0.0);
    if (slack_usable) {
      sf.artificial_of_row[static_cast<std::size_t>(r)] = slack_col;
    } else {
      const int art = static_cast<int>(sf.columns.size());
      sf.columns.emplace_back();
      sf.upper.push_back(kInf);
      sf.cost.push_back(0.0);
      sf.is_artificial.push_back(true);
      add_entry(art, r, 1.0);
      sf.artificial_of_row[static_cast<std::size_t>(r)] = art;
    }
  }
  return sf;
}

/// Dense working state of the bounded simplex on a StandardForm.
class Tableau {
 public:
  Tableau(const StandardForm& sf, const SimplexOptions& options,
          SolveContext& ctx)
      : sf_(sf),
        options_(options),
        ctx_(ctx),
        m_(static_cast<int>(sf.rhs.size())),
        n_(static_cast<int>(sf.columns.size())),
        binv_(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_),
              0.0),
        basis_(static_cast<std::size_t>(m_)),
        status_(static_cast<std::size_t>(n_), VarStatus::kAtLower),
        value_(static_cast<std::size_t>(n_), 0.0),
        upper_(sf.upper) {
    // Initial basis: the designated slack/artificial of each row; Binv = I.
    for (int r = 0; r < m_; ++r) {
      const int col = sf.artificial_of_row[static_cast<std::size_t>(r)];
      basis_[static_cast<std::size_t>(r)] = col;
      status_[static_cast<std::size_t>(col)] = VarStatus::kBasic;
      binv_at(r, r) = 1.0;
      value_[static_cast<std::size_t>(col)] =
          sf.rhs[static_cast<std::size_t>(r)];
    }
  }

  /// Runs phases 1 and 2. Returns the final status.
  SolveStatus run() {
    SolveStatus status = SolveStatus::kOptimal;
    if (needs_phase1()) {
      phase1_ = true;
      status = iterate();
      phase1_ = false;
      phase1_iterations_ = iterations_;
      if (status == SolveStatus::kOptimal) {
        fire_phase_event(1, iterations_, phase1_objective());
        // Relative test: rows scale with the data (rhs can be ~1e9).
        double rhs_scale = 1.0;
        for (const double b : sf_.rhs) {
          rhs_scale = std::max(rhs_scale, std::abs(b));
        }
        if (phase1_objective() > options_.feasibility_tol * rhs_scale) {
          return SolveStatus::kInfeasible;
        }
        seal_artificials();
      } else {
        return status == SolveStatus::kUnbounded ? SolveStatus::kInfeasible
                                                 : status;
      }
    }
    status = iterate();
    if (status == SolveStatus::kOptimal) {
      fire_phase_event(2, iterations_ - phase1_iterations_,
                       internal_objective());
    }
    return status;
  }

  [[nodiscard]] int iterations() const { return iterations_; }
  [[nodiscard]] int phase1_iterations() const { return phase1_iterations_; }
  [[nodiscard]] int refactorizations() const { return refactorizations_; }
  [[nodiscard]] int degenerate_pivots() const { return degenerate_pivots_; }

  /// Objective of the internal minimization (no shift/constant applied).
  [[nodiscard]] double internal_objective() const {
    double total = 0.0;
    for (int j = 0; j < n_; ++j) {
      total += sf_.cost[static_cast<std::size_t>(j)] *
               value_[static_cast<std::size_t>(j)];
    }
    return total;
  }

  [[nodiscard]] double column_value(int col) const {
    return value_[static_cast<std::size_t>(col)];
  }

  /// Row multipliers y = c_B B^-1 for the phase-2 costs.
  [[nodiscard]] std::vector<double> row_duals() const {
    std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      double total = 0.0;
      for (int k = 0; k < m_; ++k) {
        total += sf_.cost[static_cast<std::size_t>(
                     basis_[static_cast<std::size_t>(k)])] *
                 binv_at_const(k, i);
      }
      y[static_cast<std::size_t>(i)] = total;
    }
    return y;
  }

 private:
  void fire_phase_event(int phase, int pivots, double objective) {
    if (!ctx_.events.on_simplex_phase) return;
    SimplexPhaseEvent event;
    event.phase = phase;
    event.pivots = pivots;
    event.objective = objective;
    ctx_.events.on_simplex_phase(event);
  }

  /// Cooperative interruption: the pivot loop calls this every
  /// `refactor_interval` pivots. Cancellation wins over the deadline.
  [[nodiscard]] SolveStatus interruption_status() const {
    if (ctx_.cancelled()) return SolveStatus::kCancelled;
    if (ctx_.deadline().expired()) return SolveStatus::kTimeLimit;
    return SolveStatus::kOptimal;  // sentinel: keep going
  }

  [[nodiscard]] double& binv_at(int r, int c) {
    return binv_[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double binv_at_const(int r, int c) const {
    return binv_[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(c)];
  }

  [[nodiscard]] bool needs_phase1() const {
    for (int r = 0; r < m_; ++r) {
      if (sf_.is_artificial[static_cast<std::size_t>(
              sf_.artificial_of_row[static_cast<std::size_t>(r)])]) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] double cost_of(int col) const {
    if (phase1_) {
      return sf_.is_artificial[static_cast<std::size_t>(col)] ? 1.0 : 0.0;
    }
    return sf_.cost[static_cast<std::size_t>(col)];
  }

  [[nodiscard]] double phase1_objective() const {
    double total = 0.0;
    for (int j = 0; j < n_; ++j) {
      if (sf_.is_artificial[static_cast<std::size_t>(j)]) {
        total += value_[static_cast<std::size_t>(j)];
      }
    }
    return total;
  }

  /// After phase 1, pin artificials at zero so they can never re-enter.
  void seal_artificials() {
    for (int j = 0; j < n_; ++j) {
      if (sf_.is_artificial[static_cast<std::size_t>(j)]) {
        upper_[static_cast<std::size_t>(j)] = 0.0;
      }
    }
  }

  /// y = (phase costs of basis) * Binv.
  void compute_duals(std::vector<double>& y) const {
    y.assign(static_cast<std::size_t>(m_), 0.0);
    for (int k = 0; k < m_; ++k) {
      const double ck = cost_of(basis_[static_cast<std::size_t>(k)]);
      if (ck == 0.0) continue;
      const double* row = &binv_[static_cast<std::size_t>(k) *
                                 static_cast<std::size_t>(m_)];
      for (int i = 0; i < m_; ++i) y[static_cast<std::size_t>(i)] += ck * row[i];
    }
  }

  [[nodiscard]] double reduced_cost(int j, const std::vector<double>& y) const {
    double d = cost_of(j);
    const SparseColumn& col = sf_.columns[static_cast<std::size_t>(j)];
    for (std::size_t k = 0; k < col.rows.size(); ++k) {
      d -= y[static_cast<std::size_t>(col.rows[k])] * col.coefs[k];
    }
    return d;
  }

  /// w = Binv * A_j.
  void compute_direction(int j, std::vector<double>& w) const {
    w.assign(static_cast<std::size_t>(m_), 0.0);
    const SparseColumn& col = sf_.columns[static_cast<std::size_t>(j)];
    for (std::size_t k = 0; k < col.rows.size(); ++k) {
      const int r = col.rows[k];
      const double a = col.coefs[k];
      for (int i = 0; i < m_; ++i) {
        w[static_cast<std::size_t>(i)] += binv_at_const(i, r) * a;
      }
    }
  }

  /// Rebuilds Binv from the basis by Gauss-Jordan and recomputes basic values.
  /// Returns false if the basis matrix is numerically singular.
  bool refactorize() {
    ++refactorizations_;
    // Build dense B.
    std::vector<double> b_mat(
        static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), 0.0);
    for (int k = 0; k < m_; ++k) {
      const SparseColumn& col =
          sf_.columns[static_cast<std::size_t>(basis_[static_cast<std::size_t>(k)])];
      for (std::size_t e = 0; e < col.rows.size(); ++e) {
        b_mat[static_cast<std::size_t>(col.rows[e]) *
                  static_cast<std::size_t>(m_) +
              static_cast<std::size_t>(k)] = col.coefs[e];
      }
    }
    // Gauss-Jordan inversion with partial pivoting.
    std::vector<double> inv(
        static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      inv[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) +
          static_cast<std::size_t>(i)] = 1.0;
    }
    auto at = [this](std::vector<double>& mat, int r, int c) -> double& {
      return mat[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(c)];
    };
    for (int col = 0; col < m_; ++col) {
      int piv = col;
      double best = std::abs(at(b_mat, col, col));
      for (int r = col + 1; r < m_; ++r) {
        const double candidate = std::abs(at(b_mat, r, col));
        if (candidate > best) {
          best = candidate;
          piv = r;
        }
      }
      if (best < options_.pivot_tol) return false;
      if (piv != col) {
        for (int c = 0; c < m_; ++c) {
          std::swap(at(b_mat, piv, c), at(b_mat, col, c));
          std::swap(at(inv, piv, c), at(inv, col, c));
        }
      }
      const double scale = 1.0 / at(b_mat, col, col);
      for (int c = 0; c < m_; ++c) {
        at(b_mat, col, c) *= scale;
        at(inv, col, c) *= scale;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double factor = at(b_mat, r, col);
        if (factor == 0.0) continue;
        for (int c = 0; c < m_; ++c) {
          at(b_mat, r, c) -= factor * at(b_mat, col, c);
          at(inv, r, c) -= factor * at(inv, col, c);
        }
      }
    }
    binv_ = std::move(inv);
    recompute_basic_values();
    return true;
  }

  /// x_B = Binv * (b - sum over nonbasic-at-upper columns of A_j * u_j).
  void recompute_basic_values() {
    std::vector<double> residual = sf_.rhs;
    for (int j = 0; j < n_; ++j) {
      if (status_[static_cast<std::size_t>(j)] != VarStatus::kAtUpper) continue;
      const double v = upper_[static_cast<std::size_t>(j)];
      value_[static_cast<std::size_t>(j)] = v;
      if (v == 0.0) continue;
      const SparseColumn& col = sf_.columns[static_cast<std::size_t>(j)];
      for (std::size_t e = 0; e < col.rows.size(); ++e) {
        residual[static_cast<std::size_t>(col.rows[e])] -= col.coefs[e] * v;
      }
    }
    for (int j = 0; j < n_; ++j) {
      if (status_[static_cast<std::size_t>(j)] == VarStatus::kAtLower) {
        value_[static_cast<std::size_t>(j)] = 0.0;
      }
    }
    for (int k = 0; k < m_; ++k) {
      double total = 0.0;
      for (int i = 0; i < m_; ++i) {
        total += binv_at_const(k, i) * residual[static_cast<std::size_t>(i)];
      }
      value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(k)])] =
          total;
    }
  }

  /// Main simplex loop for the current phase.
  SolveStatus iterate() {
    std::vector<double> y;
    std::vector<double> w;
    int degenerate_run = 0;
    bool use_bland = false;
    int pivots_since_refactor = 0;
    int pivots_since_poll = options_.refactor_interval;  // poll on entry
    while (true) {
      if (iterations_ >= options_.max_iterations) {
        return SolveStatus::kIterationLimit;
      }
      // Deadline/cancellation poll, every refactor_interval pivots. Bounds
      // how long past its budget one LP can run to one refactorization
      // interval of pivot work.
      if (pivots_since_poll >= options_.refactor_interval) {
        pivots_since_poll = 0;
        const SolveStatus interrupted = interruption_status();
        if (interrupted != SolveStatus::kOptimal) return interrupted;
      }
      ++pivots_since_poll;
      compute_duals(y);
      // Pricing.
      int entering = -1;
      double best_score = options_.optimality_tol;
      double entering_dir = 0.0;
      for (int j = 0; j < n_; ++j) {
        const VarStatus st = status_[static_cast<std::size_t>(j)];
        if (st == VarStatus::kBasic) continue;
        if (upper_[static_cast<std::size_t>(j)] <= 0.0) continue;  // fixed
        const double d = reduced_cost(j, y);
        double score = 0.0;
        double dir = 0.0;
        if (st == VarStatus::kAtLower && d < -options_.optimality_tol) {
          score = -d;
          dir = 1.0;
        } else if (st == VarStatus::kAtUpper && d > options_.optimality_tol) {
          score = d;
          dir = -1.0;
        } else {
          continue;
        }
        if (use_bland) {
          entering = j;
          entering_dir = dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          entering = j;
          entering_dir = dir;
        }
      }
      if (entering < 0) {
        // Verify against drift: refactorize once and re-price.
        if (pivots_since_refactor > 0) {
          if (!refactorize()) return SolveStatus::kIterationLimit;
          pivots_since_refactor = 0;
          compute_duals(y);
          bool still_optimal = true;
          for (int j = 0; j < n_ && still_optimal; ++j) {
            const VarStatus st = status_[static_cast<std::size_t>(j)];
            if (st == VarStatus::kBasic) continue;
            if (upper_[static_cast<std::size_t>(j)] <= 0.0) continue;
            const double d = reduced_cost(j, y);
            if ((st == VarStatus::kAtLower &&
                 d < -10 * options_.optimality_tol) ||
                (st == VarStatus::kAtUpper &&
                 d > 10 * options_.optimality_tol)) {
              still_optimal = false;
            }
          }
          if (still_optimal) return SolveStatus::kOptimal;
          continue;  // re-enter loop with fresh factorization
        }
        return SolveStatus::kOptimal;
      }

      compute_direction(entering, w);
      // Ratio test. The entering variable moves by t in direction
      // entering_dir; basic k changes by -t * entering_dir * w[k].
      double t_max = upper_[static_cast<std::size_t>(entering)];  // bound flip
      int leaving_row = -1;
      VarStatus leaving_status = VarStatus::kAtLower;
      for (int k = 0; k < m_; ++k) {
        const double delta = -entering_dir * w[static_cast<std::size_t>(k)];
        if (std::abs(delta) < options_.pivot_tol) continue;
        const int basic = basis_[static_cast<std::size_t>(k)];
        const double xv = value_[static_cast<std::size_t>(basic)];
        double limit;
        VarStatus hit;
        if (delta < 0.0) {
          limit = xv / (-delta);  // falls to lower bound 0
          hit = VarStatus::kAtLower;
        } else {
          const double ub = upper_[static_cast<std::size_t>(basic)];
          if (!std::isfinite(ub)) continue;
          limit = (ub - xv) / delta;  // rises to upper bound
          hit = VarStatus::kAtUpper;
        }
        if (limit < -1e-9) limit = 0.0;  // numerical noise
        if (limit < t_max - 1e-12 ||
            (leaving_row < 0 && limit <= t_max)) {
          t_max = std::max(limit, 0.0);
          leaving_row = k;
          leaving_status = hit;
        }
      }
      if (!std::isfinite(t_max)) {
        return phase1_ ? SolveStatus::kInfeasible : SolveStatus::kUnbounded;
      }

      ++iterations_;
      if (t_max < 1e-10) {
        ++degenerate_run;
        ++degenerate_pivots_;
        if (degenerate_run > options_.degeneracy_threshold) use_bland = true;
      } else {
        degenerate_run = 0;
        use_bland = false;
      }

      // Apply the step to all basic values and the entering variable.
      for (int k = 0; k < m_; ++k) {
        const int basic = basis_[static_cast<std::size_t>(k)];
        value_[static_cast<std::size_t>(basic)] -=
            t_max * entering_dir * w[static_cast<std::size_t>(k)];
      }
      value_[static_cast<std::size_t>(entering)] +=
          t_max * entering_dir;

      if (leaving_row < 0) {
        // Pure bound flip; basis unchanged.
        status_[static_cast<std::size_t>(entering)] =
            entering_dir > 0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
        continue;
      }

      // Pivot: `entering` replaces the basic variable of `leaving_row`.
      const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
      status_[static_cast<std::size_t>(leaving)] = leaving_status;
      // Snap the leaving variable exactly onto its bound.
      value_[static_cast<std::size_t>(leaving)] =
          leaving_status == VarStatus::kAtLower
              ? 0.0
              : upper_[static_cast<std::size_t>(leaving)];
      status_[static_cast<std::size_t>(entering)] = VarStatus::kBasic;
      basis_[static_cast<std::size_t>(leaving_row)] = entering;

      const double pivot = w[static_cast<std::size_t>(leaving_row)];
      if (std::abs(pivot) < options_.pivot_tol) {
        // Numerically unsafe pivot: rebuild and retry.
        if (!refactorize()) return SolveStatus::kIterationLimit;
        pivots_since_refactor = 0;
        continue;
      }
      // Binv update: row ops making column w into the unit vector e_r.
      double* pivot_row = &binv_[static_cast<std::size_t>(leaving_row) *
                                 static_cast<std::size_t>(m_)];
      const double inv_pivot = 1.0 / pivot;
      for (int c = 0; c < m_; ++c) pivot_row[c] *= inv_pivot;
      for (int r = 0; r < m_; ++r) {
        if (r == leaving_row) continue;
        const double factor = w[static_cast<std::size_t>(r)];
        if (factor == 0.0) continue;
        double* row = &binv_[static_cast<std::size_t>(r) *
                             static_cast<std::size_t>(m_)];
        for (int c = 0; c < m_; ++c) row[c] -= factor * pivot_row[c];
      }
      if (++pivots_since_refactor >= options_.refactor_interval) {
        if (!refactorize()) return SolveStatus::kIterationLimit;
        pivots_since_refactor = 0;
      }
    }
  }

  const StandardForm& sf_;
  const SimplexOptions& options_;
  SolveContext& ctx_;
  int m_;
  int n_;
  std::vector<double> binv_;
  std::vector<int> basis_;
  std::vector<VarStatus> status_;
  std::vector<double> value_;
  std::vector<double> upper_;
  bool phase1_ = false;
  int iterations_ = 0;
  int phase1_iterations_ = 0;
  int refactorizations_ = 0;
  int degenerate_pivots_ = 0;
};

}  // namespace

SimplexSolver::SimplexSolver(SimplexOptions options) : options_(options) {}

LpSolution SimplexSolver::solve(const Model& model, SolveContext& ctx) const {
  std::vector<double> lower(static_cast<std::size_t>(model.num_variables()));
  std::vector<double> upper(static_cast<std::size_t>(model.num_variables()));
  for (int j = 0; j < model.num_variables(); ++j) {
    lower[static_cast<std::size_t>(j)] = model.variable(j).lower;
    upper[static_cast<std::size_t>(j)] = model.variable(j).upper;
  }
  return solve(model, lower, upper, ctx);
}

LpSolution SimplexSolver::solve(const Model& model,
                                const std::vector<double>& lower,
                                const std::vector<double>& upper,
                                SolveContext& ctx) const {
  model.validate();
  if (lower.size() != static_cast<std::size_t>(model.num_variables()) ||
      upper.size() != static_cast<std::size_t>(model.num_variables())) {
    throw InvalidInputError("solve: bound override size mismatch");
  }
  SolveScope scope(ctx, "simplex");
  scope.stats().add("calls", 1.0);
  LpSolution solution;
  const StandardForm sf = build_standard_form(model, lower, upper);
  if (sf.trivially_infeasible) {
    solution.status = SolveStatus::kInfeasible;
    ET_LOG(kDebug) << "simplex: trivially infeasible ("
                   << sf.infeasibility_note << ")";
    return solution;
  }

  Tableau tableau(sf, options_, ctx);
  const SolveStatus status = tableau.run();
  solution.status = status;
  solution.iterations = tableau.iterations();
  solution.phase1_iterations = tableau.phase1_iterations();
  solution.refactorizations = tableau.refactorizations();
  solution.degenerate_pivots = tableau.degenerate_pivots();
  SolveStats& stats = scope.stats();
  stats.add("pivots", solution.iterations);
  stats.add("phase1_pivots", solution.phase1_iterations);
  stats.add("refactorizations", solution.refactorizations);
  stats.add("degenerate_pivots", solution.degenerate_pivots);
  if (status != SolveStatus::kOptimal) return solution;

  const double sense_sign = model.sense() == Sense::kMinimize ? 1.0 : -1.0;
  solution.values.resize(static_cast<std::size_t>(model.num_variables()));
  for (int j = 0; j < model.num_variables(); ++j) {
    const VarMap& vm = sf.var_maps[static_cast<std::size_t>(j)];
    double v = vm.offset + vm.sign * tableau.column_value(vm.column);
    if (vm.negative_column >= 0) {
      v -= tableau.column_value(vm.negative_column);
    }
    solution.values[static_cast<std::size_t>(j)] = v;
  }
  solution.objective = model.evaluate_objective(solution.values);

  const std::vector<double> y = tableau.row_duals();
  solution.duals.assign(static_cast<std::size_t>(model.num_constraints()),
                        0.0);
  for (int i = 0; i < model.num_constraints(); ++i) {
    const int r = sf.row_of_model_row[static_cast<std::size_t>(i)];
    if (r < 0) continue;
    solution.duals[static_cast<std::size_t>(i)] =
        sense_sign * sf.row_dual_sign[static_cast<std::size_t>(r)] *
        y[static_cast<std::size_t>(r)];
  }
  return solution;
}

}  // namespace etransform::lp
