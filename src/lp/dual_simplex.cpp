// Bound-flipping-ratio-test (BFRT) dual simplex — the reoptimization loop
// of RevisedSimplex. Shares the sparse Markowitz LU / FTRAN / BTRAN / eta
// machinery in lp/basis.* with the primal loop (simplex.cpp).
//
// Why a dual loop at all: branch-and-bound children and cut rounds restart
// from a parent-optimal basis whose duals are still feasible — only the
// primal values are out of bounds (a tightened branch bound, or a freshly
// violated cut row whose slack enters basic and infeasible). The dual
// simplex walks straight back to optimality without the composite phase-1
// detour, typically in a handful of pivots.
//
// Loop shape per pivot:
//  * Leaving row r: the basic variable with the largest bound violation
//    (Dantzig-style dual pricing); sigma = +1 when it sits above its upper
//    bound (it will leave at upper), -1 below its lower bound.
//  * Pivot row: rho = B^-T e_r (one btran), alpha_j = rho . A_j over the
//    nonbasic columns.
//  * BFRT: breakpoints (nonbasic j whose reduced cost d_j hits zero at dual
//    step t_j = d_j / (sigma alpha_j)) are sorted by ratio; boxed
//    breakpoints whose full-range flip still leaves the row infeasible are
//    flipped (slope -= range * |alpha_j|) instead of entering, letting one
//    dual pivot pass many small breakpoints. The first breakpoint that
//    absorbs the remaining slope enters the basis.
//  * Harris-style widening: among breakpoints whose selection keeps every
//    other candidate's reduced cost within dtol_ of feasibility, the
//    largest |alpha| pivot is preferred for stability.
//  * Anti-cycling: a run of degenerate (zero-step) dual pivots triggers a
//    deterministic cost-shift perturbation that pushes every nonbasic
//    reduced cost strictly inside its half-space; shifts live only in
//    shifted_cost_/d_, so the primal phase-2 cleanup that certifies the
//    final basis always prices against the true costs.
#include <algorithm>
#include <cmath>
#include <limits>

#include "lp/simplex_core.h"

namespace etransform::lp::detail {

namespace {
/// Pivot-row entries below this are treated as structural zeros.
constexpr double kAlphaZeroTol = 1e-11;
/// Dual steps below this count as degenerate pivots.
constexpr double kDegenerateStep = 1e-10;
}  // namespace

void RevisedSimplex::dual_refresh() {
  y_.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) {
    y_[static_cast<std::size_t>(k)] = shifted_cost_[static_cast<std::size_t>(
        basis_[static_cast<std::size_t>(k)])];
  }
  engine_->btran(y_);
  d_.assign(static_cast<std::size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j) {
    if (status_[static_cast<std::size_t>(j)] == BasisVarStatus::kBasic) {
      continue;
    }
    double d = shifted_cost_[static_cast<std::size_t>(j)];
    const SparseColumn& col = prep_.columns[static_cast<std::size_t>(j)];
    for (std::size_t e = 0; e < col.rows.size(); ++e) {
      d -= y_[static_cast<std::size_t>(col.rows[e])] * col.coefs[e];
    }
    d_[static_cast<std::size_t>(j)] = d;
  }
}

bool RevisedSimplex::dual_start_feasible() {
  double cost_scale = 1.0;
  for (const double c : prep_.cost) {
    cost_scale = std::max(cost_scale, std::abs(c));
  }
  dtol_ = options_.optimality_tol * cost_scale;
  shifted_cost_ = prep_.cost;
  dual_refresh();
  for (int j = 0; j < n_; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (status_[ju] == BasisVarStatus::kBasic) continue;
    if (lower_[ju] == upper_[ju]) continue;  // fixed: any sign is feasible
    switch (status_[ju]) {
      case BasisVarStatus::kAtLower:
        if (d_[ju] < -dtol_) return false;
        break;
      case BasisVarStatus::kAtUpper:
        if (d_[ju] > dtol_) return false;
        break;
      case BasisVarStatus::kFree:
        if (std::abs(d_[ju]) > dtol_) return false;
        break;
      case BasisVarStatus::kBasic: break;
    }
  }
  return true;
}

void RevisedSimplex::dual_perturb() {
  perturbed_ = true;
  for (int j = 0; j < n_; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (status_[ju] == BasisVarStatus::kBasic) continue;
    if (lower_[ju] == upper_[ju]) continue;
    // Deterministic per-column spread in [dtol_, 1.5 dtol_]: ties between
    // breakpoints become strict orderings, which is all cycling needs.
    const double eps =
        dtol_ * (1.0 + 0.5 * static_cast<double>((j * 37) % 101) / 101.0);
    switch (status_[ju]) {
      case BasisVarStatus::kAtLower:
        if (d_[ju] < eps) {
          shifted_cost_[ju] += eps - d_[ju];
          d_[ju] = eps;
        }
        break;
      case BasisVarStatus::kAtUpper:
        if (d_[ju] > -eps) {
          shifted_cost_[ju] -= d_[ju] + eps;
          d_[ju] = -eps;
        }
        break;
      default: break;  // free columns keep their (near-zero) reduced cost
    }
  }
}

SolveStatus RevisedSimplex::iterate_dual() {
  dual_refresh();
  int degenerate_run = 0;
  int pivots_since_poll = options_.refactor_interval;  // poll on entry
  while (true) {
    if (iterations_ >= options_.max_iterations) {
      return SolveStatus::kIterationLimit;
    }
    if (pivots_since_poll >= options_.refactor_interval) {
      pivots_since_poll = 0;
      const SolveStatus interrupted = interruption_status();
      if (interrupted != SolveStatus::kOptimal) return interrupted;
    }
    ++pivots_since_poll;

    // Leaving row: the most violated basic variable (dual Dantzig pricing).
    int r = -1;
    double best_v = ftol_;
    for (int k = 0; k < m_; ++k) {
      const double v = violation(basis_[static_cast<std::size_t>(k)]);
      if (v > best_v) {
        best_v = v;
        r = k;
      }
    }
    if (r < 0) {
      // Primal feasible => dual-optimal. Like the primal loop, only declare
      // against a freshly refactorized basis.
      if (pivots_since_refactor_ == 0) return SolveStatus::kOptimal;
      if (!refactorize_or_recover()) return SolveStatus::kNumericalError;
      if (restart_phase1_) {
        dual_abandoned_ = true;
        return SolveStatus::kOptimal;
      }
      dual_refresh();
      continue;
    }

    const int leaving = basis_[static_cast<std::size_t>(r)];
    const auto lu = static_cast<std::size_t>(leaving);
    const bool above = value_[lu] > upper_[lu];
    const double sigma = above ? 1.0 : -1.0;

    // Pivot row: rho = B^-T e_r, alpha_j = rho . A_j for nonbasic j.
    rho_.assign(static_cast<std::size_t>(m_), 0.0);
    rho_[static_cast<std::size_t>(r)] = 1.0;
    engine_->btran(rho_);
    if (alpha_.size() != static_cast<std::size_t>(n_)) {
      alpha_.assign(static_cast<std::size_t>(n_), 0.0);
    }
    alpha_nz_.clear();
    for (int j = 0; j < n_; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      if (status_[ju] == BasisVarStatus::kBasic) continue;
      const SparseColumn& col = prep_.columns[ju];
      double a = 0.0;
      for (std::size_t e = 0; e < col.rows.size(); ++e) {
        a += rho_[static_cast<std::size_t>(col.rows[e])] * col.coefs[e];
      }
      if (std::abs(a) <= kAlphaZeroTol) continue;
      alpha_[ju] = a;
      alpha_nz_.push_back(j);
    }

    // Ratio-test breakpoints: nonbasic columns whose reduced cost blocks
    // the dual step along +sigma * rho.
    bps_.clear();
    for (const int j : alpha_nz_) {
      const auto ju = static_cast<std::size_t>(j);
      if (lower_[ju] == upper_[ju]) continue;  // fixed: never enters
      const double a = sigma * alpha_[ju];
      bool eligible = false;
      switch (status_[ju]) {
        case BasisVarStatus::kAtLower: eligible = a > options_.pivot_tol; break;
        case BasisVarStatus::kAtUpper:
          eligible = a < -options_.pivot_tol;
          break;
        case BasisVarStatus::kFree:
          eligible = std::abs(a) > options_.pivot_tol;
          break;
        case BasisVarStatus::kBasic: break;
      }
      if (!eligible) continue;
      double ratio = d_[ju] / a;
      if (ratio < 0.0) ratio = 0.0;  // d_ drift within tolerance
      bps_.push_back({j, ratio, std::abs(alpha_[ju])});
    }

    bool infeasible_ray = bps_.empty();
    std::size_t enter_k = bps_.size();
    double slope = best_v;  // remaining primal infeasibility of row r
    if (!infeasible_ray) {
      std::sort(bps_.begin(), bps_.end(),
                [](const DualBreakpoint& a, const DualBreakpoint& b) {
                  return a.ratio < b.ratio;
                });
      // Bound-flipping walk: while the row's infeasibility survives
      // flipping a boxed breakpoint across its whole range, flip it and
      // keep walking; the entering variable is the breakpoint that absorbs
      // the remaining slope.
      flips_.clear();
      for (std::size_t k = 0; k < bps_.size(); ++k) {
        const auto ju = static_cast<std::size_t>(bps_[k].j);
        const bool boxed =
            std::isfinite(lower_[ju]) && std::isfinite(upper_[ju]);
        if (boxed) {
          const double drop = (upper_[ju] - lower_[ju]) * bps_[k].abs_alpha;
          if (slope - drop > ftol_) {
            slope -= drop;
            flips_.push_back(bps_[k].j);
            continue;
          }
        }
        enter_k = k;
        break;
      }
      // All breakpoints flipped away with infeasibility left: the dual is
      // unbounded along this ray.
      infeasible_ray = enter_k == bps_.size();
    }
    if (infeasible_ray) {
      // Declare primal infeasibility only against a fresh factorization.
      if (pivots_since_refactor_ == 0) return SolveStatus::kInfeasible;
      if (!refactorize_or_recover()) return SolveStatus::kNumericalError;
      if (restart_phase1_) {
        dual_abandoned_ = true;
        return SolveStatus::kOptimal;
      }
      dual_refresh();
      continue;
    }

    // Harris-style widening: any breakpoint with ratio <= t_accept keeps
    // every other candidate's reduced cost within dtol_ of feasibility;
    // among those, the largest |alpha| makes the most stable pivot.
    double t_accept = std::numeric_limits<double>::infinity();
    for (std::size_t k = enter_k; k < bps_.size(); ++k) {
      t_accept = std::min(t_accept, bps_[k].ratio + dtol_ / bps_[k].abs_alpha);
    }
    std::size_t choice = enter_k;
    for (std::size_t k = enter_k + 1;
         k < bps_.size() && bps_[k].ratio <= t_accept; ++k) {
      if (bps_[k].abs_alpha > bps_[choice].abs_alpha) choice = k;
    }
    const int q = bps_[choice].j;
    const auto qu = static_cast<std::size_t>(q);

    // Entering direction w = B^-1 A_q; validate the pivot before mutating
    // any state so a retreat leaves the basis consistent.
    w_.assign(static_cast<std::size_t>(m_), 0.0);
    const SparseColumn& qcol = prep_.columns[qu];
    for (std::size_t e = 0; e < qcol.rows.size(); ++e) {
      w_[static_cast<std::size_t>(qcol.rows[e])] = qcol.coefs[e];
    }
    engine_->ftran(w_);
    const double pivot = w_[static_cast<std::size_t>(r)];
    // FTRAN and BTRAN views of the pivot must agree; a large relative gap
    // means the eta file has drifted.
    const bool unstable =
        std::abs(pivot) < options_.pivot_tol ||
        std::abs(pivot - alpha_[qu]) > 1e-6 + 0.5 * std::abs(pivot);
    if (unstable) {
      if (pivots_since_refactor_ == 0) {
        // Fresh basis and still no usable pivot: hand the repair to the
        // primal phases rather than looping.
        dual_abandoned_ = true;
        return SolveStatus::kOptimal;
      }
      if (!refactorize_or_recover()) return SolveStatus::kNumericalError;
      if (restart_phase1_) {
        dual_abandoned_ = true;
        return SolveStatus::kOptimal;
      }
      dual_refresh();
      continue;
    }

    double t = d_[qu] / (sigma * alpha_[qu]);
    if (t < 0.0) t = 0.0;  // degenerate: restores q's own feasibility

    // Apply the accumulated bound flips: each nonbasic jumps its whole
    // range; the basic values absorb B^-1 (sum delta_j A_j) in one ftran.
    if (!flips_.empty()) {
      work_.assign(static_cast<std::size_t>(m_), 0.0);
      for (const int j : flips_) {
        const auto ju = static_cast<std::size_t>(j);
        const double range = upper_[ju] - lower_[ju];
        double delta;
        if (status_[ju] == BasisVarStatus::kAtLower) {
          status_[ju] = BasisVarStatus::kAtUpper;
          value_[ju] = upper_[ju];
          delta = range;
        } else {
          status_[ju] = BasisVarStatus::kAtLower;
          value_[ju] = lower_[ju];
          delta = -range;
        }
        const SparseColumn& col = prep_.columns[ju];
        for (std::size_t e = 0; e < col.rows.size(); ++e) {
          work_[static_cast<std::size_t>(col.rows[e])] += col.coefs[e] * delta;
        }
      }
      engine_->ftran(work_);
      for (int k = 0; k < m_; ++k) {
        value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(k)])] -=
            work_[static_cast<std::size_t>(k)];
      }
      bound_flips_ += static_cast<int>(flips_.size());
    }

    // Dual update along y' = y + t sigma rho: d_j -= t sigma alpha_j for
    // every nonbasic column with a pivot-row entry; the leaving variable
    // lands at -sigma t (feasible for the bound it leaves at).
    if (t != 0.0) {
      for (const int j : alpha_nz_) {
        const auto ju = static_cast<std::size_t>(j);
        d_[ju] -= t * sigma * alpha_[ju];
      }
    }
    d_[lu] = -sigma * t;
    d_[qu] = 0.0;

    // Primal step: drive the leaving variable exactly onto its violated
    // bound; the entering variable absorbs the row's residual.
    const double target = above ? upper_[lu] : lower_[lu];
    const double dx = (value_[lu] - target) / pivot;
    if (dx != 0.0) {
      for (int k = 0; k < m_; ++k) {
        value_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(k)])] -=
            dx * w_[static_cast<std::size_t>(k)];
      }
    }
    value_[qu] += dx;

    status_[lu] = above ? BasisVarStatus::kAtUpper : BasisVarStatus::kAtLower;
    value_[lu] = target;
    status_[qu] = BasisVarStatus::kBasic;
    basis_[static_cast<std::size_t>(r)] = q;

    ++iterations_;
    ++dual_pivots_;
    if (t < kDegenerateStep) {
      ++degenerate_run;
      ++degenerate_pivots_;
      if (degenerate_run > options_.degeneracy_threshold) {
        dual_perturb();
        degenerate_run = 0;
      }
    } else {
      degenerate_run = 0;
    }

    const bool updated = engine_->update(w_, r);
    if (!updated || ++pivots_since_refactor_ >= options_.refactor_interval ||
        engine_->should_refactorize()) {
      if (!refactorize_or_recover()) return SolveStatus::kNumericalError;
      if (restart_phase1_) {
        dual_abandoned_ = true;
        return SolveStatus::kOptimal;
      }
      dual_refresh();
    }
  }
}

}  // namespace etransform::lp::detail
