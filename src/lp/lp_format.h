// CPLEX LP file format writer and parser.
//
// The paper's prototype (Fig. 5) communicates between the transformation
// module and the optimization engine through an LP file and a solution file;
// we reproduce that interchange. The writer emits the subset of the format we
// need (objective with optional constant, Subject To, Bounds, Binary,
// General, End) and the parser reads the same subset back, so
// write -> parse -> write is a fixed point (tested).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace etransform::lp {

/// Serializes `model` in CPLEX LP format. Variable and constraint names are
/// sanitized (invalid characters replaced, leading digits prefixed) and
/// uniquified; the emitted text always round-trips through parse_lp.
[[nodiscard]] std::string write_lp(const Model& model);

/// Writes write_lp(model) to a stream.
void write_lp(const Model& model, std::ostream& out);

/// Parses CPLEX LP format text into a Model. Throws ParseError with a
/// line-numbered message on malformed input.
[[nodiscard]] Model parse_lp(const std::string& text);

/// Reads an LP file from a stream.
[[nodiscard]] Model parse_lp(std::istream& in);

/// Serializes an LP solution as `status`, `objective`, then one
/// `name value` line per variable (names taken from the model).
[[nodiscard]] std::string write_solution(const Model& model,
                                         const LpSolution& solution);

/// Parsed form of a solution file.
struct SolutionFile {
  std::string status;
  double objective = 0.0;
  std::vector<std::pair<std::string, double>> values;
};

/// Parses a solution file produced by write_solution. Throws ParseError on
/// malformed input.
[[nodiscard]] SolutionFile parse_solution(const std::string& text);

}  // namespace etransform::lp
