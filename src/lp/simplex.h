// Bounded-variable two-phase primal simplex.
//
// Solves the LP relaxation of a Model: integrality markers are ignored here
// (branch-and-bound in milp/ enforces them by tightening bounds). The solver
// supports general variable bounds (finite / infinite / fixed / free) via the
// standard shifted + split transformation, inequality rows via slacks, and a
// phase-1 with artificial variables for rows that the slack basis cannot
// satisfy.
//
// Implementation notes:
//  * Dense explicit basis inverse, updated by elementary pivots and
//    refactorized periodically (and before declaring optimality) to bound
//    drift.
//  * Dantzig pricing with an automatic switch to Bland's rule after a run of
//    degenerate pivots, which guarantees termination.
//  * The constraint matrix is stored column-sparse; per-iteration cost is
//    O(m^2 + nnz).
//  * Control & observability flow through a SolveContext: the deadline and
//    cancellation token are polled every `refactor_interval` pivots inside
//    the pivot loop, `on_simplex_phase` fires as each phase completes, and
//    pivot/refactorization/degeneracy counters aggregate into the context's
//    "simplex" stats node.
#pragma once

#include <vector>

#include "common/solve_context.h"
#include "lp/model.h"

namespace etransform::lp {

/// Result status of an LP solve.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,  // pivot budget (SimplexOptions::max_iterations) exhausted
  kTimeLimit,       // SolveContext deadline expired mid-solve
  kCancelled,       // SolveContext::request_cancel() observed mid-solve
};

/// Human-readable status name.
[[nodiscard]] const char* to_string(SolveStatus status);

/// Tuning knobs for the simplex.
struct SimplexOptions {
  /// Hard cap on total pivots across both phases.
  int max_iterations = 200000;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  /// Minimum absolute pivot element.
  double pivot_tol = 1e-9;
  /// Primal feasibility tolerance (phase-1 objective must reach below this).
  double feasibility_tol = 1e-7;
  /// Rebuild the basis inverse every this many pivots. Also the cadence of
  /// deadline/cancellation polls inside the pivot loop.
  int refactor_interval = 128;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int degeneracy_threshold = 64;
};

/// Outcome of an LP solve. `values`/`duals` are only meaningful when status
/// is kOptimal. Duals are reported for the original row orientation: for a
/// minimization, a binding `<=` row has dual <= 0 under our sign convention
/// y = c_B B^-1 ... we report y such that objective = y.b + (reduced cost
/// terms), i.e. the classic multiplier of the equality form after adding
/// slacks.
struct LpSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Objective in the model's own sense (includes the objective constant).
  double objective = 0.0;
  /// One value per model variable.
  std::vector<double> values;
  /// One multiplier per model constraint.
  std::vector<double> duals;
  /// Total simplex pivots used.
  int iterations = 0;
  /// Pivots spent in phase 1 (0 when the slack basis was feasible).
  int phase1_iterations = 0;
  /// Basis-inverse rebuilds performed.
  int refactorizations = 0;
  /// Degenerate (zero-step) pivots encountered.
  int degenerate_pivots = 0;
};

/// The LP engine. Stateless between solves; safe to reuse.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {});

  /// Solves the LP relaxation of `model` under `ctx` (deadline, cancel
  /// token, events, stats). Throws InvalidInputError on malformed models;
  /// never throws for infeasible/unbounded (reported via status).
  [[nodiscard]] LpSolution solve(const Model& model, SolveContext& ctx) const;

  /// Solves with per-variable bound overrides (used by branch-and-bound).
  /// `lower`/`upper` must each have one entry per model variable.
  [[nodiscard]] LpSolution solve(const Model& model,
                                 const std::vector<double>& lower,
                                 const std::vector<double>& upper,
                                 SolveContext& ctx) const;

 private:
  SimplexOptions options_;
};

}  // namespace etransform::lp
