// Bounded-variable revised simplex — shared types and tuning knobs.
//
// This header holds the data model of the LP layer: statuses, options,
// PreparedLp (the bounds-independent standard form), BasisSnapshot and
// LpSolution. The solve entry point lives in lp/lp_engine.h (lp::LpEngine),
// which dispatches between the two-phase primal simplex and the
// bound-flipping dual simplex per SolveMode.
//
// Solves target the LP relaxation of a Model: integrality markers are
// ignored here (branch-and-bound in milp/ enforces them by tightening
// bounds). Variables keep their model bounds directly (finite / infinite /
// fixed / free); every kept row becomes an equality with a sign-constrained
// slack, so the sparse structure is independent of the bounds and can be
// prepared once per Model (PreparedLp) and reused across bound-override
// solves.
//
// Implementation notes:
//  * The basis is held as a sparse LU factorization (Markowitz ordering)
//    updated by product-form eta files — see lp/basis.h. FTRAN/BTRAN kernels
//    replace the old dense B^-1 sweeps; the basis is refactorized every
//    `refactor_interval` pivots or when the eta file outgrows the factors.
//    The legacy dense explicit inverse survives behind
//    SimplexOptions::use_dense_fallback for differential testing.
//  * Pricing is candidate-list partial pricing with Devex-style reference
//    weights (PricingRule::kDevexPartial, the default): a rotating cursor
//    refills a small candidate list, and optimality is only declared after a
//    full scan against a freshly refactorized basis. Dantzig full pricing is
//    available (PricingRule::kDantzig), and a run of degenerate pivots still
//    switches to Bland's rule, which guarantees termination.
//  * Phase 1 is composite (artificial-free): basic variables outside their
//    bounds get cost +-1 toward feasibility, so any basis — in particular a
//    warm-started one whose bounds just changed — can be repaired in place.
//  * Solves can warm-start from a BasisSnapshot (returned in LpSolution) so
//    branch-and-bound children resume from the parent basis instead of
//    cold-starting phase 1.
//  * A singular or unstable factorization triggers slack-basis recovery;
//    repeated failures surface as SolveStatus::kNumericalError instead of
//    masquerading as an iteration limit.
//  * Control & observability flow through a SolveContext: the deadline and
//    cancellation token are polled every `refactor_interval` pivots inside
//    the pivot loop, `on_simplex_phase` fires as each phase completes, and
//    pivot/refactorization/pricing/eta counters aggregate into the context's
//    "simplex" stats node.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/solve_context.h"
#include "lp/basis.h"
#include "lp/model.h"

namespace etransform::lp {

/// Result status of an LP solve.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,  // pivot budget (SimplexOptions::max_iterations) exhausted
  kTimeLimit,       // SolveContext deadline expired mid-solve
  kCancelled,       // SolveContext::request_cancel() observed mid-solve
  kNumericalError,  // singular/unstable basis that recovery could not repair
};

/// Human-readable status name.
[[nodiscard]] const char* to_string(SolveStatus status);

/// Column-selection strategy of the pivot loop.
enum class PricingRule {
  kDevexPartial,  // candidate list + Devex-style reference weights (default)
  kDantzig,       // full scan, most negative reduced cost (legacy behavior)
};

/// Which simplex variant LpEngine runs.
///
///  * kPrimal — two-phase primal simplex, always.
///  * kDual   — attempt the dual simplex from the start basis (the slack
///              basis when none is supplied); fall back to primal when the
///              start basis is not dual-feasible.
///  * kAuto   — dual when an LpStartBasis advertises a reoptimization
///              relationship (bound change / appended rows) *and* the
///              numeric dual-feasibility check passes; primal otherwise.
enum class SolveMode {
  kPrimal,
  kDual,
  kAuto,
};

/// Human-readable mode name ("primal" / "dual" / "auto").
[[nodiscard]] const char* to_string(SolveMode mode);

/// Tuning knobs for the simplex.
struct SimplexOptions {
  /// Algorithm selection policy; see SolveMode. The default lets warm
  /// restarts (B&B children, cut rounds) reoptimize with the dual simplex.
  SolveMode mode = SolveMode::kAuto;
  /// Hard cap on total pivots across both phases.
  int max_iterations = 200000;
  /// Reduced-cost optimality tolerance.
  double optimality_tol = 1e-7;
  /// Minimum absolute pivot element.
  double pivot_tol = 1e-9;
  /// Primal feasibility tolerance (relative to the instance's magnitude).
  double feasibility_tol = 1e-7;
  /// Refactorize the basis every this many pivots. Also the cadence of
  /// deadline/cancellation polls inside the pivot loop.
  int refactor_interval = 128;
  /// Consecutive degenerate pivots before switching to Bland's rule.
  int degeneracy_threshold = 64;
  /// Use the legacy dense explicit-inverse basis engine instead of the
  /// sparse LU. Kept for differential testing and benchmarking.
  bool use_dense_fallback = false;
  /// Pricing strategy; see PricingRule.
  PricingRule pricing = PricingRule::kDevexPartial;
  /// Partial-pricing candidate list size; 0 picks clamp(n/32, 8, 32).
  int candidate_list_size = 0;
};

/// Status of one internal column in a basis snapshot.
enum class BasisVarStatus : unsigned char { kBasic, kAtLower, kAtUpper, kFree };

/// A restartable description of a simplex basis: which internal column is
/// basic in each row, and where every nonbasic column rests. Returned from
/// optimal solves and accepted as a warm start by LpEngine::solve (wrapped
/// in an LpStartBasis) — valid for any solve over the *same* PreparedLp
/// (bound overrides may differ; statuses are re-clamped to the new bounds
/// and any resulting infeasibility is repaired by the dual simplex or by
/// composite phase 1).
struct BasisSnapshot {
  std::vector<int> basic_columns;             // one per internal row
  std::vector<BasisVarStatus> column_status;  // one per internal column
};

/// Bounds-independent standard form of one Model, built once and shared by
/// every bound-override solve (e.g. all branch-and-bound nodes). Internal
/// column j < num_vars is model variable j verbatim; the remaining columns
/// are row slacks (a.x + s = rhs, s sign-constrained by the row relation).
/// Members are an internal layout published for the solver; treat as opaque.
struct PreparedLp {
  /// Validates the model and builds the internal form. The model must
  /// outlive this object. Throws InvalidInputError on malformed models.
  explicit PreparedLp(const Model& model);

  [[nodiscard]] int num_rows() const { return static_cast<int>(rhs.size()); }
  [[nodiscard]] int num_columns() const {
    return static_cast<int>(columns.size());
  }

  const Model* model = nullptr;
  int num_vars = 0;         // model variables == leading internal columns
  double sense_sign = 1.0;  // +1 minimize, -1 maximize
  std::vector<SparseColumn> columns;  // num_vars structural + one slack/row
  std::vector<double> cost;           // internal minimization cost per column
  std::vector<double> rhs;            // one per kept row
  std::vector<double> slack_lower;    // slack bounds per kept row
  std::vector<double> slack_upper;
  std::vector<int> row_of_model_row;  // -1 when the model row was dropped
  bool trivially_infeasible = false;
  std::string infeasibility_note;
};

/// Outcome of an LP solve. `values`/`duals`/`basis` are only meaningful when
/// status is kOptimal. Duals are reported for the original row orientation:
/// the classic multiplier of the equality form after adding slacks, so for a
/// minimization a binding `>=` row has dual >= 0.
struct LpSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Objective in the model's own sense (includes the objective constant).
  double objective = 0.0;
  /// One value per model variable.
  std::vector<double> values;
  /// One multiplier per model constraint.
  std::vector<double> duals;
  /// Final basis, usable to warm-start related solves (B&B children).
  std::shared_ptr<const BasisSnapshot> basis;
  /// Total simplex pivots used.
  int iterations = 0;
  /// Pivots spent in phase 1 (0 when the start basis was feasible).
  int phase1_iterations = 0;
  /// Basis factorizations performed (>= 1: the start basis counts).
  int refactorizations = 0;
  /// Degenerate (zero-step) pivots encountered.
  int degenerate_pivots = 0;
  /// True when a supplied warm-start basis was successfully installed.
  bool warm_started = false;
  /// True when the dual simplex ran (it may still have handed a cleaned-up
  /// basis to the primal phase-2 loop for the final optimality check).
  bool used_dual = false;
  /// Dual-simplex pivots (a subset of `iterations`).
  int dual_pivots = 0;
  /// Nonbasic bound flips taken by the dual ratio test (not pivots).
  int bound_flips = 0;
};

}  // namespace etransform::lp
