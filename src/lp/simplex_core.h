// Internal working state of the revised simplex — shared by the primal
// pivot loop (simplex.cpp) and the bound-flipping dual pivot loop
// (dual_simplex.cpp). Not part of the public LP surface; include
// lp/lp_engine.h instead.
//
// One RevisedSimplex instance covers one solve of one PreparedLp + bound
// set. LpEngine drives it: run() installs the (warm) basis, optionally
// attempts the dual simplex when the start basis passes the numeric
// dual-feasibility check, and always finishes through the primal phase-2
// loop so optimality is certified by a single code path.
#pragma once

#include <memory>
#include <vector>

#include "common/solve_context.h"
#include "lp/basis.h"
#include "lp/simplex.h"

namespace etransform::lp::detail {

/// Maximum slack-basis recoveries from singular factorizations before a
/// solve gives up with kNumericalError.
inline constexpr int kMaxRecoveries = 3;

/// Working state of the revised simplex on one PreparedLp + bound set.
class RevisedSimplex {
 public:
  RevisedSimplex(const PreparedLp& prep, const SimplexOptions& options,
                 SolveContext& ctx);

  /// Installs per-variable bound overrides (+ the fixed slack bounds) and
  /// derives the feasibility scale. Returns false when some lower > upper.
  [[nodiscard]] bool set_bounds(const std::vector<double>& lo,
                                const std::vector<double>& up);

  /// Runs the solve, optionally warm-starting from `warm`. When `try_dual`
  /// is set and the installed start basis is dual-feasible, reoptimizes
  /// with the dual simplex first; the primal phases then finish (or repair)
  /// from wherever the dual loop left the basis.
  SolveStatus run(const BasisSnapshot* warm, bool try_dual);

  [[nodiscard]] int iterations() const { return iterations_; }
  [[nodiscard]] int phase1_iterations() const { return phase1_iterations_; }
  [[nodiscard]] int refactorizations() const {
    return static_cast<int>(engine_->counters().refactorizations);
  }
  [[nodiscard]] int degenerate_pivots() const { return degenerate_pivots_; }
  [[nodiscard]] const BasisCounters& basis_counters() const {
    return engine_->counters();
  }
  [[nodiscard]] long long candidate_hits() const { return candidate_hits_; }
  [[nodiscard]] long long full_scans() const { return full_scans_; }
  [[nodiscard]] bool warm_started() const { return warm_started_; }
  [[nodiscard]] bool used_dual() const { return used_dual_; }
  [[nodiscard]] int dual_pivots() const { return dual_pivots_; }
  [[nodiscard]] int bound_flips() const { return bound_flips_; }

  [[nodiscard]] double column_value(int col) const {
    return value_[static_cast<std::size_t>(col)];
  }

  /// Objective of the internal minimization (slack costs are zero).
  [[nodiscard]] double internal_objective() const;

  /// Row multipliers y = c_B B^-T for the phase-2 costs (row-indexed).
  [[nodiscard]] std::vector<double> row_duals() const;

  [[nodiscard]] BasisSnapshot snapshot() const;

 private:
  // --- shared plumbing (simplex.cpp) ---
  void fire_phase_event(int phase, int pivots, double objective);
  void init_slack_basis();
  [[nodiscard]] BasisVarStatus default_nonbasic_status(int j) const;
  [[nodiscard]] bool apply_snapshot(const BasisSnapshot& snap);
  [[nodiscard]] double nonbasic_resting_value(int j) const;
  void recompute_values();
  [[nodiscard]] bool refactorize();
  [[nodiscard]] bool refactorize_or_recover();
  [[nodiscard]] double violation(int col) const;
  [[nodiscard]] bool has_infeasible_basic() const;
  [[nodiscard]] double total_infeasibility() const;
  [[nodiscard]] SolveStatus interruption_status() const;

  // --- primal pivot loop (simplex.cpp) ---
  [[nodiscard]] double phase1_cost(int col) const;
  void compute_duals(std::vector<double>& y) const;
  [[nodiscard]] double reduced_cost(int j, const std::vector<double>& y) const;
  [[nodiscard]] double attractive_dir(int j, double d, double tol) const;
  void price_full_scan(const std::vector<double>& y, bool bland, double tol,
                       int& entering, double& entering_dir) const;
  void price_candidates(const std::vector<double>& y, int& entering,
                        double& entering_dir);
  void rebuild_candidates(const std::vector<double>& y);
  void devex_update(int entering, int leaving, int r,
                    const std::vector<double>& w);
  SolveStatus iterate();

  // --- dual pivot loop (dual_simplex.cpp) ---
  /// Computes the dual tolerance, duals and reduced costs for the installed
  /// basis and checks every nonbasic column against its feasibility
  /// half-space. A true return licenses iterate_dual().
  [[nodiscard]] bool dual_start_feasible();
  /// Refreshes y_ and d_ from the (possibly perturbed) costs via one btran.
  void dual_refresh();
  /// Shifts every nonbasic reduced cost strictly inside its feasible
  /// half-space (deterministic spread) to break dual-degenerate ties.
  void dual_perturb();
  /// Bound-flipping-ratio-test dual pivot loop. kOptimal means the basis is
  /// primal feasible (dual-optimal); run() then certifies with the primal
  /// phase-2 loop. Sets dual_abandoned_ when it retreats (singular-basis
  /// recovery, unusable pivot) and the primal phases must repair instead.
  SolveStatus iterate_dual();

  const PreparedLp& prep_;
  const SimplexOptions& options_;
  SolveContext& ctx_;
  int m_;
  int n_;
  std::vector<double> lower_, upper_;
  std::vector<BasisVarStatus> status_;
  std::vector<double> value_;
  std::vector<int> basis_;
  std::vector<double> gamma_;       // Devex reference weights
  std::vector<int> candidates_;     // partial-pricing candidate list
  std::unique_ptr<BasisFactorization> engine_;
  int cursor_ = 0;
  int list_size_ = 8;
  double ftol_ = 1e-7;
  bool phase1_ = false;
  bool restart_phase1_ = false;
  bool warm_started_ = false;
  int iterations_ = 0;
  int phase1_iterations_ = 0;
  int degenerate_pivots_ = 0;
  int pivots_since_refactor_ = 0;
  int recoveries_ = 0;
  long long candidate_hits_ = 0;
  long long full_scans_ = 0;
  // Scratch vectors reused across iterations.
  std::vector<double> y_, w_, rho_, work_;

  // Dual-simplex state (dual_simplex.cpp).
  struct DualBreakpoint {
    int j;             // nonbasic internal column
    double ratio;      // dual step at which its reduced cost hits zero
    double abs_alpha;  // |pivot row entry|, the flip slope / pivot size
  };
  std::vector<double> shifted_cost_;  // prep_.cost + anti-cycling shifts
  std::vector<double> d_;             // reduced costs of nonbasic columns
  std::vector<double> alpha_;         // dense pivot-row scratch
  std::vector<int> alpha_nz_;         // nonbasic j with |alpha_[j]| > 0
  std::vector<DualBreakpoint> bps_;   // ratio-test breakpoints
  std::vector<int> flips_;            // bound flips of the current pivot
  double dtol_ = 1e-7;                // dual feasibility tolerance (scaled)
  bool perturbed_ = false;
  bool used_dual_ = false;
  bool dual_abandoned_ = false;
  int dual_pivots_ = 0;
  int bound_flips_ = 0;
};

}  // namespace etransform::lp::detail
