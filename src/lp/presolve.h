// LP/MILP presolve: provably-safe model reductions.
//
// Applied reductions (to a fixed point):
//   * fixed variables (lower == upper) are substituted out,
//   * singleton rows (one variable) become bound tightenings and disappear,
//   * empty rows are checked and dropped,
//   * crossing bounds / violated empty rows flag the model infeasible.
// Every reduction preserves the optimal value; postsolve() maps a reduced
// solution back to the original variable space. Used by lp_tool before
// solving and available to any caller (the planner's formulations contain
// plenty of singleton tier rows).
#pragma once

#include <vector>

#include "common/solve_context.h"
#include "lp/model.h"

namespace etransform::lp {

/// Outcome of presolving.
enum class PresolveStatus {
  kReduced,     // `reduced` is equivalent to the input
  kInfeasible,  // the input has no feasible point
};

/// The reduced model plus the data needed to undo the reduction.
struct PresolveResult {
  PresolveStatus status = PresolveStatus::kReduced;
  Model reduced;
  /// reduced variable index -> original variable index.
  std::vector<int> original_of_reduced;
  /// Per original variable: the value it was fixed at, or NaN if it is
  /// still present in the reduced model.
  std::vector<double> fixed_value;
  int rows_removed = 0;
  int vars_removed = 0;
};

/// Presolves `model` under `ctx`: fires `on_presolve_reduction` per applied
/// reduction, tallies removals into the context's "presolve" stats node, and
/// stops early (returning the valid partial reduction — every prefix of the
/// fixpoint is equivalence-preserving) when the deadline expires or
/// cancellation is requested. Throws InvalidInputError on malformed models.
[[nodiscard]] PresolveResult presolve(const Model& model, SolveContext& ctx);

/// Maps a solution of `result.reduced` back to the original variables.
/// Throws InvalidInputError if the value count does not match the reduced
/// model.
[[nodiscard]] std::vector<double> postsolve(
    const PresolveResult& result, const std::vector<double>& reduced_values);

}  // namespace etransform::lp
