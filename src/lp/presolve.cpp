#include "lp/presolve.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "telemetry/trace.h"

namespace etransform::lp {

namespace {

constexpr double kTol = 1e-9;

/// Working copy of the model's bounds/rows during the fixpoint loop.
struct Working {
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<bool> is_integer;
  std::vector<bool> var_fixed;      // substituted out
  std::vector<double> fixed_value;  // valid when var_fixed
  std::vector<Constraint> rows;
  std::vector<bool> row_removed;
};

/// Rounds integer bounds inward; returns false on a crossing.
bool tighten_integer_bounds(Working& w, int j) {
  if (!w.is_integer[static_cast<std::size_t>(j)]) {
    return w.lower[static_cast<std::size_t>(j)] <=
           w.upper[static_cast<std::size_t>(j)] + kTol;
  }
  auto& lo = w.lower[static_cast<std::size_t>(j)];
  auto& hi = w.upper[static_cast<std::size_t>(j)];
  if (std::isfinite(lo)) lo = std::ceil(lo - kTol);
  if (std::isfinite(hi)) hi = std::floor(hi + kTol);
  return lo <= hi + kTol;
}

}  // namespace

PresolveResult presolve(const Model& model, SolveContext& ctx) {
  model.validate();
  SolveScope scope(ctx, "presolve");
  const auto fire = [&ctx](const char* rule, int rows, int vars) {
    if (telemetry::TraceRecorder* rec = ctx.trace()) {
      rec->instant("lp", rule, rows + vars);
    }
    if (!ctx.events.on_presolve_reduction) return;
    PresolveReductionEvent event;
    event.rule = rule;
    event.rows_removed = rows;
    event.vars_removed = vars;
    ctx.events.on_presolve_reduction(event);
  };
  const int n = model.num_variables();
  Working w;
  w.lower.resize(static_cast<std::size_t>(n));
  w.upper.resize(static_cast<std::size_t>(n));
  w.is_integer.resize(static_cast<std::size_t>(n));
  w.var_fixed.assign(static_cast<std::size_t>(n), false);
  w.fixed_value.assign(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    const auto& v = model.variable(j);
    w.lower[static_cast<std::size_t>(j)] = v.lower;
    w.upper[static_cast<std::size_t>(j)] = v.upper;
    w.is_integer[static_cast<std::size_t>(j)] = v.is_integer;
  }
  for (int i = 0; i < model.num_constraints(); ++i) {
    Constraint row = model.constraint(i);
    row.terms = merge_terms(std::move(row.terms));
    w.rows.push_back(std::move(row));
  }
  w.row_removed.assign(w.rows.size(), false);

  PresolveResult result;
  const auto infeasible = [&result]() {
    result.status = PresolveStatus::kInfeasible;
    return result;
  };

  for (int j = 0; j < n; ++j) {
    if (!tighten_integer_bounds(w, j)) return infeasible();
  }

  int passes = 0;
  bool changed = true;
  // Interruption poll per pass: every completed reduction is independently
  // equivalence-preserving, so stopping early just yields a less-reduced
  // (still correct) model.
  while (changed && !ctx.should_stop()) {
    const telemetry::TraceSpan pass_span(ctx.trace(), "lp", "presolve.pass");
    ++passes;
    changed = false;
    // Fix variables with equal bounds.
    for (int j = 0; j < n; ++j) {
      if (w.var_fixed[static_cast<std::size_t>(j)]) continue;
      const double lo = w.lower[static_cast<std::size_t>(j)];
      const double hi = w.upper[static_cast<std::size_t>(j)];
      if (lo > hi + kTol) return infeasible();
      if (std::isfinite(lo) && std::abs(hi - lo) <= kTol) {
        w.var_fixed[static_cast<std::size_t>(j)] = true;
        w.fixed_value[static_cast<std::size_t>(j)] = lo;
        fire("fix_variable", 0, 1);
        changed = true;
      }
    }
    // Substitute fixed variables, handle empty and singleton rows.
    for (std::size_t r = 0; r < w.rows.size(); ++r) {
      if (w.row_removed[r]) continue;
      auto& row = w.rows[r];
      double shift = 0.0;
      std::vector<Term> remaining;
      remaining.reserve(row.terms.size());
      for (const Term& t : row.terms) {
        if (w.var_fixed[static_cast<std::size_t>(t.var)]) {
          shift += t.coef * w.fixed_value[static_cast<std::size_t>(t.var)];
        } else {
          remaining.push_back(t);
        }
      }
      if (shift != 0.0) {
        row.rhs -= shift;
        changed = true;
      }
      if (remaining.size() != row.terms.size()) row.terms = remaining;

      if (row.terms.empty()) {
        const bool satisfied =
            (row.relation == Relation::kLessEqual && 0.0 <= row.rhs + kTol) ||
            (row.relation == Relation::kGreaterEqual &&
             0.0 >= row.rhs - kTol) ||
            (row.relation == Relation::kEqual && std::abs(row.rhs) <= kTol);
        if (!satisfied) return infeasible();
        w.row_removed[r] = true;
        fire("empty_row", 1, 0);
        changed = true;
        continue;
      }
      if (row.terms.size() == 1) {
        const int j = row.terms[0].var;
        const double a = row.terms[0].coef;
        const double bound = row.rhs / a;
        auto& lo = w.lower[static_cast<std::size_t>(j)];
        auto& hi = w.upper[static_cast<std::size_t>(j)];
        switch (row.relation) {
          case Relation::kLessEqual:
            if (a > 0) hi = std::min(hi, bound);
            else lo = std::max(lo, bound);
            break;
          case Relation::kGreaterEqual:
            if (a > 0) lo = std::max(lo, bound);
            else hi = std::min(hi, bound);
            break;
          case Relation::kEqual:
            lo = std::max(lo, bound);
            hi = std::min(hi, bound);
            break;
        }
        if (!tighten_integer_bounds(w, j)) return infeasible();
        if (lo > hi + kTol) return infeasible();
        w.row_removed[r] = true;
        fire("singleton_row", 1, 0);
        changed = true;
        continue;
      }
    }
  }

  // Assemble the reduced model.
  result.fixed_value.assign(static_cast<std::size_t>(n),
                            std::numeric_limits<double>::quiet_NaN());
  std::vector<int> reduced_of_original(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < n; ++j) {
    if (w.var_fixed[static_cast<std::size_t>(j)]) {
      result.fixed_value[static_cast<std::size_t>(j)] =
          w.fixed_value[static_cast<std::size_t>(j)];
      ++result.vars_removed;
      continue;
    }
    const auto& v = model.variable(j);
    reduced_of_original[static_cast<std::size_t>(j)] =
        result.reduced.add_variable(v.name,
                                    w.lower[static_cast<std::size_t>(j)],
                                    w.upper[static_cast<std::size_t>(j)],
                                    v.is_integer);
    result.original_of_reduced.push_back(j);
  }
  double objective_shift = model.objective_constant();
  std::vector<Term> objective;
  for (const Term& t : merge_terms(model.objective())) {
    if (w.var_fixed[static_cast<std::size_t>(t.var)]) {
      objective_shift +=
          t.coef * w.fixed_value[static_cast<std::size_t>(t.var)];
    } else {
      objective.push_back(
          Term{reduced_of_original[static_cast<std::size_t>(t.var)], t.coef});
    }
  }
  result.reduced.set_objective(model.sense(), std::move(objective),
                               objective_shift);
  for (std::size_t r = 0; r < w.rows.size(); ++r) {
    if (w.row_removed[r]) {
      ++result.rows_removed;
      continue;
    }
    std::vector<Term> terms;
    terms.reserve(w.rows[r].terms.size());
    for (const Term& t : w.rows[r].terms) {
      terms.push_back(
          Term{reduced_of_original[static_cast<std::size_t>(t.var)], t.coef});
    }
    result.reduced.add_constraint(w.rows[r].name, std::move(terms),
                                  w.rows[r].relation, w.rows[r].rhs);
  }
  SolveStats& stats = scope.stats();
  stats.add("passes", passes);
  stats.add("rows_removed", result.rows_removed);
  stats.add("vars_removed", result.vars_removed);
  return result;
}

std::vector<double> postsolve(const PresolveResult& result,
                              const std::vector<double>& reduced_values) {
  if (reduced_values.size() != result.original_of_reduced.size()) {
    throw InvalidInputError("postsolve: reduced value count mismatch");
  }
  std::vector<double> values = result.fixed_value;
  for (std::size_t k = 0; k < reduced_values.size(); ++k) {
    values[static_cast<std::size_t>(result.original_of_reduced[k])] =
        reduced_values[k];
  }
  for (const double v : values) {
    if (std::isnan(v)) {
      throw InvalidInputError("postsolve: incomplete reconstruction");
    }
  }
  return values;
}

}  // namespace etransform::lp
