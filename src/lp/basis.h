// Basis factorization engines for the revised simplex.
//
// The simplex never materializes B^-1. It talks to a BasisFactorization
// through three kernels:
//   * ftran:  x := B^-1 x   (entering column / basic value computation)
//   * btran:  x := B^-T x   (duals, pivot rows for Devex weights)
//   * update: append a product-form eta after a pivot, deferring the next
//     refactorization until the eta file grows or drifts.
//
// Two engines implement the interface:
//   * SparseLuBasis — the production path: a sparse LU of B with
//     Markowitz-style pivot ordering (minimum fill estimate under a
//     threshold-pivoting stability test), solved as permuted triangular
//     systems, updated between refactorizations by product-form etas.
//   * DenseInverseBasis — the legacy explicit-inverse path (Gauss-Jordan
//     refactorization, O(m^2) kernels), kept behind
//     SimplexOptions::use_dense_fallback for differential testing.
#pragma once

#include <memory>
#include <vector>

namespace etransform::lp {

/// One column of a column-sparse matrix: parallel row-index/coefficient
/// arrays. Shared by the standard form (simplex.cpp) and the factorization.
struct SparseColumn {
  std::vector<int> rows;
  std::vector<double> coefs;
};

/// Cumulative counters an engine keeps across a solve, surfaced as
/// SolveStats metrics ("refactorizations", "eta_entries", ...).
struct BasisCounters {
  long long refactorizations = 0;  ///< factorize() calls that succeeded
  long long etas = 0;              ///< product-form etas appended
  long long eta_entries = 0;       ///< total nonzeros across appended etas
  long long factor_entries = 0;    ///< nonzeros of the current factorization
};

/// Abstract basis engine. All vectors are dense, length m (the row count
/// fixed at construction); `ftran` maps row-indexed right-hand sides to
/// basis-position-indexed solutions and `btran` the reverse, matching the
/// usual revised-simplex orientation where basis position k owns row k's
/// slot of the triangular solves.
class BasisFactorization {
 public:
  virtual ~BasisFactorization() = default;

  /// Factorizes B whose k-th column is `columns[basis[k]]`. Discards any
  /// eta file. Returns false when B is singular to within the engine's
  /// pivot tolerance (the caller decides how to recover).
  [[nodiscard]] virtual bool factorize(const std::vector<SparseColumn>& columns,
                                       const std::vector<int>& basis) = 0;

  /// x := B^-1 x. Input indexed by row, output by basis position.
  virtual void ftran(std::vector<double>& x) const = 0;

  /// x := B^-T x. Input indexed by basis position, output by row.
  virtual void btran(std::vector<double>& x) const = 0;

  /// Registers the pivot that replaced basis position `r`'s column, where
  /// `w` = B^-1 a_entering under the current representation. Returns false
  /// when the update is numerically unsafe and the caller must refactorize.
  [[nodiscard]] virtual bool update(const std::vector<double>& w, int r) = 0;

  /// True when the eta file has grown past the point where refactorizing
  /// is cheaper (or safer) than applying more etas.
  [[nodiscard]] virtual bool should_refactorize() const = 0;

  [[nodiscard]] const BasisCounters& counters() const { return counters_; }

 protected:
  BasisCounters counters_;
};

/// Builds the engine selected by the options: the sparse LU path, or the
/// legacy dense explicit inverse when `dense` is set. `pivot_tol` is the
/// singularity floor for factorization pivots.
[[nodiscard]] std::unique_ptr<BasisFactorization> make_basis_factorization(
    int rows, bool dense, double pivot_tol);

/// BTRAN-based simplex tableau row extraction over a basis snapshot.
///
/// Given the column matrix A and an (ordered) basic column set B, the
/// simplex tableau row for basis position p is
///     abar_j = (B^-1 A)_pj = rho . A_j   with   rho = B^-T e_p,
/// so one BTRAN of a unit vector plus one sparse dot product per column
/// yields any row without ever forming B^-1. Cut separators (Gomory cuts in
/// milp/cuts.*) use this to read tableau rows off the optimal basis the LP
/// solve returned.
class TableauRowExtractor {
 public:
  /// Factorizes B whose p-th column is `columns[basic_columns[p]]`.
  /// `columns` must outlive the extractor. Returns false when the basis is
  /// singular to within `pivot_tol` (the extractor is then unusable).
  [[nodiscard]] bool load(int rows, const std::vector<SparseColumn>& columns,
                          const std::vector<int>& basic_columns,
                          double pivot_tol = 1e-9);

  /// rho = B^-T e_position, the row multipliers of tableau row `position`
  /// (row-indexed, dense, length `rows`). Valid until the next call.
  [[nodiscard]] const std::vector<double>& row_multipliers(int position);

  /// abar_j = rho . column — one tableau-row coefficient.
  [[nodiscard]] static double row_coefficient(const std::vector<double>& rho,
                                              const SparseColumn& column);

 private:
  std::unique_ptr<BasisFactorization> engine_;
  std::vector<double> rho_;
  int rows_ = 0;
};

}  // namespace etransform::lp
