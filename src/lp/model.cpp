#include "lp/model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace etransform::lp {

std::vector<Term> merge_terms(std::vector<Term> terms) {
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  merged.reserve(terms.size());
  for (const Term& t : terms) {
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coef += t.coef;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const Term& t) { return t.coef == 0.0; });
  return merged;
}

int Model::add_variable(const std::string& name, double lower, double upper,
                        bool is_integer) {
  if (name.empty()) throw InvalidInputError("variable name must be non-empty");
  if (lower > upper) {
    throw InvalidInputError("variable '" + name + "': lower > upper");
  }
  variables_.push_back(Variable{name, lower, upper, is_integer});
  return static_cast<int>(variables_.size()) - 1;
}

int Model::add_continuous(const std::string& name, double lower,
                          double upper) {
  return add_variable(name, lower, upper, /*is_integer=*/false);
}

int Model::add_binary(const std::string& name) {
  return add_variable(name, 0.0, 1.0, /*is_integer=*/true);
}

void Model::check_terms(const std::vector<Term>& terms) const {
  for (const Term& t : terms) {
    if (t.var < 0 || t.var >= num_variables()) {
      throw InvalidInputError("term references unknown variable index " +
                              std::to_string(t.var));
    }
    if (!std::isfinite(t.coef)) {
      throw InvalidInputError("non-finite coefficient on variable '" +
                              variables_[static_cast<std::size_t>(t.var)].name +
                              "'");
    }
  }
}

int Model::add_constraint(const std::string& name, std::vector<Term> terms,
                          Relation relation, double rhs) {
  check_terms(terms);
  if (std::isnan(rhs)) throw InvalidInputError("constraint rhs is NaN");
  if (std::isinf(rhs) && relation == Relation::kEqual) {
    throw InvalidInputError("constraint '" + name +
                            "': infinite rhs on equality");
  }
  constraints_.push_back(Constraint{name, std::move(terms), relation, rhs});
  return static_cast<int>(constraints_.size()) - 1;
}

void Model::set_row_structure(int row, RowStructure structure) {
  if (row < 0 || row >= num_constraints()) {
    throw InvalidInputError("set_row_structure: unknown constraint index");
  }
  constraints_[static_cast<std::size_t>(row)].structure = structure;
}

void Model::set_objective(Sense sense, std::vector<Term> terms,
                          double constant) {
  check_terms(terms);
  if (!std::isfinite(constant)) {
    throw InvalidInputError("objective constant is non-finite");
  }
  sense_ = sense;
  objective_ = std::move(terms);
  objective_constant_ = constant;
}

void Model::add_objective_term(int var, double coef) {
  check_terms({Term{var, coef}});
  objective_.push_back(Term{var, coef});
}

void Model::set_bounds(int var, double lower, double upper) {
  if (var < 0 || var >= num_variables()) {
    throw InvalidInputError("set_bounds: unknown variable index");
  }
  if (lower > upper) throw InvalidInputError("set_bounds: lower > upper");
  auto& v = variables_[static_cast<std::size_t>(var)];
  v.lower = lower;
  v.upper = upper;
}

void Model::set_integer(int var, bool is_integer) {
  if (var < 0 || var >= num_variables()) {
    throw InvalidInputError("set_integer: unknown variable index");
  }
  variables_[static_cast<std::size_t>(var)].is_integer = is_integer;
}

void Model::normalize() {
  objective_ = merge_terms(std::move(objective_));
  for (auto& row : constraints_) {
    row.terms = merge_terms(std::move(row.terms));
  }
}

void Model::validate() const {
  for (const auto& v : variables_) {
    if (v.lower > v.upper) {
      throw InvalidInputError("variable '" + v.name + "': lower > upper");
    }
    if (std::isnan(v.lower) || std::isnan(v.upper)) {
      throw InvalidInputError("variable '" + v.name + "': NaN bound");
    }
  }
  for (const auto& row : constraints_) {
    check_terms(row.terms);
    if (std::isnan(row.rhs)) {
      throw InvalidInputError("constraint '" + row.name + "': NaN rhs");
    }
    if (std::isinf(row.rhs) && row.relation == Relation::kEqual) {
      throw InvalidInputError("constraint '" + row.name +
                              "': infinite rhs on equality");
    }
  }
  check_terms(objective_);
}

const Variable& Model::variable(int index) const {
  if (index < 0 || index >= num_variables()) {
    throw InvalidInputError("variable index out of range");
  }
  return variables_[static_cast<std::size_t>(index)];
}

const Constraint& Model::constraint(int index) const {
  if (index < 0 || index >= num_constraints()) {
    throw InvalidInputError("constraint index out of range");
  }
  return constraints_[static_cast<std::size_t>(index)];
}

bool Model::has_integer_variables() const {
  return std::any_of(variables_.begin(), variables_.end(),
                     [](const Variable& v) { return v.is_integer; });
}

double Model::evaluate_objective(const std::vector<double>& values) const {
  if (values.size() != variables_.size()) {
    throw InvalidInputError("evaluate_objective: wrong value count");
  }
  double total = objective_constant_;
  for (const Term& t : objective_) {
    total += t.coef * values[static_cast<std::size_t>(t.var)];
  }
  return total;
}

bool Model::is_feasible(const std::vector<double>& values, double tol) const {
  if (values.size() != variables_.size()) return false;
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    const auto& v = variables_[j];
    if (values[j] < v.lower - tol || values[j] > v.upper + tol) return false;
    if (v.is_integer && std::abs(values[j] - std::round(values[j])) > tol) {
      return false;
    }
  }
  for (const auto& row : constraints_) {
    double lhs = 0.0;
    for (const Term& t : row.terms) {
      lhs += t.coef * values[static_cast<std::size_t>(t.var)];
    }
    switch (row.relation) {
      case Relation::kLessEqual:
        if (lhs > row.rhs + tol) return false;
        break;
      case Relation::kGreaterEqual:
        if (lhs < row.rhs - tol) return false;
        break;
      case Relation::kEqual:
        if (std::abs(lhs - row.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace etransform::lp
