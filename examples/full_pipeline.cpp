// The complete workflow, end to end:
//
//   1. Inventory: individual applications plus their traffic matrix.
//   2. Grouping (§II): applications that interact closely become
//      application groups (the associativity constraint's unit).
//   3. Planning (§III-IV): the grouped estate is consolidated with an
//      integrated DR plan.
//   4. Migration: the plan is compiled into executable waves under WAN and
//      cutover limits.
#include <cstdio>

#include "common/table.h"
#include "cost/cost_model.h"
#include "model/grouping.h"
#include "planner/etransform_planner.h"
#include "planner/migration.h"
#include "report/report.h"

using namespace etransform;

namespace {

ApplicationSpec app(const char* name, int servers, double data_mb,
                    std::vector<double> users,
                    LatencyPenaltyFunction penalty = {}) {
  ApplicationSpec spec;
  spec.name = name;
  spec.servers = servers;
  spec.monthly_data_megabits = data_mb;
  spec.users_per_location = std::move(users);
  spec.latency_penalty = std::move(penalty);
  return spec;
}

}  // namespace

int main() {
  // ---- 1. application inventory -------------------------------------------
  // A retail stack: storefront + its database + payment; a reporting stack;
  // an independent HR system. Two user cities.
  const auto strict = LatencyPenaltyFunction::single_step(10.0, 100.0);
  const std::vector<ApplicationSpec> apps = {
      app("storefront", 6, 4.0e6, {400.0, 100.0}, strict),
      app("orders-db", 8, 0.0, {0.0, 0.0}),
      app("payments", 2, 5.0e5, {0.0, 0.0}, strict),
      app("reporting", 5, 8.0e6, {20.0, 30.0}),
      app("etl", 4, 0.0, {0.0, 0.0}),
      app("hr-portal", 3, 1.0e6, {60.0, 60.0}),
  };
  // Monthly app-to-app traffic (megabits): storefront<->db<->payments chat
  // constantly; reporting<->etl share a warehouse; hr stands alone.
  const std::vector<std::vector<double>> traffic = {
      {0, 9e6, 2e6, 1e4, 0, 0},
      {9e6, 0, 3e6, 5e4, 0, 0},
      {2e6, 3e6, 0, 0, 0, 0},
      {1e4, 5e4, 0, 0, 7e6, 0},
      {0, 0, 0, 7e6, 0, 0},
      {0, 0, 0, 0, 0, 0},
  };

  // ---- 2. grouping ---------------------------------------------------------
  GroupingOptions grouping;
  grouping.traffic_threshold_megabits = 1.0e6;
  const GroupingResult grouped =
      build_application_groups(apps, traffic, grouping);
  std::printf("grouping: %zu applications -> %zu groups (%.1f Tb/month kept "
              "on the LAN)\n",
              apps.size(), grouped.groups.size(),
              grouped.intra_group_traffic_megabits / 1e6);
  for (const auto& group : grouped.groups) {
    std::printf("  %-30s %2d servers\n", group.name.c_str(), group.servers);
  }

  // ---- 3. consolidation + DR planning -------------------------------------
  ConsolidationInstance instance;
  instance.name = "retail";
  instance.locations = {UserLocation{"east", {0, 0}},
                        UserLocation{"west", {100, 0}}};
  instance.groups = grouped.groups;
  for (int j = 0; j < 3; ++j) {
    DataCenterSite site;
    site.name = "colo-" + std::to_string(j);
    site.position = {50.0 * j, 0.0};
    site.capacity_servers = 40;
    site.space_cost_per_server =
        StepSchedule::volume_discount(100.0 + 15.0 * j, 10.0, 10.0, 3);
    site.power_cost_per_kwh = StepSchedule::flat(0.08 + 0.03 * j);
    site.labor_cost_per_admin = StepSchedule::flat(7000.0);
    site.wan_cost_per_megabit = StepSchedule::flat(1.2e-5);
    instance.sites.push_back(std::move(site));
    instance.latency_ms.push_back({4.0 + 25.0 * j, 54.0 - 25.0 * j});
  }
  AsIsDataCenter old_room;
  old_room.name = "legacy-dc";
  old_room.position = {10.0, 0.0};
  old_room.space_cost_per_server = 280.0;
  old_room.wan_cost_per_megabit = 2.5e-5;
  old_room.power_cost_per_kwh = 0.19;
  old_room.labor_cost_per_admin = 9200.0;
  instance.as_is_centers = {old_room};
  instance.as_is_placement.assign(instance.groups.size(), 0);
  instance.as_is_latency_ms = {{6.0, 52.0}};

  const CostModel model(instance);
  PlannerOptions options;
  options.enable_dr = true;
  options.milp.search.time_limit_ms = 15000;
  const EtransformPlanner planner(options);
  SolveContext ctx;
  const PlannerReport report = planner.plan(PlanInput(model), ctx);
  std::printf("\n%s\n", render_plan_summary(instance, report.plan).c_str());

  // ---- 4. migration waves --------------------------------------------------
  MigrationLimits limits;
  limits.wan_budget_megabits = 1.0e7;  // one weekend's copy window
  limits.max_moves = 2;
  const MigrationSchedule schedule =
      schedule_migration(instance, report.plan, limits);
  std::printf("migration: %d waves (lower bound %d)\n",
              schedule.wave_count(), schedule.lower_bound_waves);
  for (std::size_t w = 0; w < schedule.waves.size(); ++w) {
    const auto& wave = schedule.waves[w];
    std::printf("  wave %zu: ", w + 1);
    for (const int j : wave.provisioned_sites) {
      std::printf("[provision DR pool at %s] ",
                  instance.sites[static_cast<std::size_t>(j)].name.c_str());
    }
    for (const int i : wave.groups) {
      std::printf("%s -> %s  ",
                  instance.groups[static_cast<std::size_t>(i)].name.c_str(),
                  instance.sites[static_cast<std::size_t>(
                                     report.plan.primary[
                                         static_cast<std::size_t>(i)])]
                      .name.c_str());
    }
    std::printf("(%.1f Tb)\n", wave.data_megabits / 1e6);
  }
  return 0;
}
