// Quickstart: describe a small estate by hand, run the planner, print the
// "to-be" state.
//
// A fictional company runs three application groups out of two aging server
// rooms and is evaluating three colocation sites. Users sit in two cities.
// eTransform picks primary sites that balance space/power/labor/WAN cost
// against each group's latency needs.
#include <cstdio>

#include "cost/cost_model.h"
#include "planner/etransform_planner.h"
#include "report/report.h"

using namespace etransform;

int main() {
  ConsolidationInstance instance;
  instance.name = "quickstart";

  // Where the users are.
  instance.locations = {
      UserLocation{"new-york", {0.0, 0.0}},
      UserLocation{"san-francisco", {100.0, 0.0}},
  };

  // The applications. The trading group is latency-critical: $100 per user
  // and month once its average latency exceeds 10 ms.
  ApplicationGroup trading;
  trading.name = "trading";
  trading.servers = 12;
  trading.monthly_data_megabits = 4.0e6;
  trading.users_per_location = {300.0, 20.0};  // mostly New York
  trading.latency_penalty = LatencyPenaltyFunction::single_step(10.0, 100.0);

  ApplicationGroup payroll;
  payroll.name = "payroll";
  payroll.servers = 6;
  payroll.monthly_data_megabits = 1.0e6;
  payroll.users_per_location = {80.0, 80.0};  // insensitive to latency

  ApplicationGroup analytics;
  analytics.name = "analytics";
  analytics.servers = 20;
  analytics.monthly_data_megabits = 2.0e7;
  analytics.users_per_location = {10.0, 40.0};
  instance.groups = {trading, payroll, analytics};

  // Candidate colocation sites. The bulk site offers volume discounts
  // (economies of scale): $90/server dropping 10% per 16 servers.
  DataCenterSite east;
  east.name = "nj-colo";
  east.position = {5.0, 0.0};
  east.capacity_servers = 40;
  east.space_cost_per_server = StepSchedule::flat(120.0);
  east.power_cost_per_kwh = StepSchedule::flat(0.14);
  east.labor_cost_per_admin = StepSchedule::flat(7800.0);
  east.wan_cost_per_megabit = StepSchedule::flat(1.5e-5);

  DataCenterSite west = east;
  west.name = "ca-colo";
  west.position = {95.0, 0.0};
  west.space_cost_per_server = StepSchedule::flat(140.0);
  west.power_cost_per_kwh = StepSchedule::flat(0.17);

  DataCenterSite bulk = east;
  bulk.name = "midwest-bulk";
  bulk.position = {50.0, 0.0};
  bulk.capacity_servers = 100;
  bulk.space_cost_per_server = StepSchedule::volume_discount(90.0, 16.0, 9.0,
                                                             4);
  bulk.power_cost_per_kwh = StepSchedule::flat(0.08);
  instance.sites = {east, west, bulk};

  // Site -> user-location latency (ms).
  instance.latency_ms = {
      {4.0, 60.0},   // nj-colo
      {62.0, 4.0},   // ca-colo
      {28.0, 30.0},  // midwest-bulk
  };

  // The current estate, for the as-is cost baseline.
  AsIsDataCenter room_a;
  room_a.name = "server-room-a";
  room_a.position = {1.0, 0.0};
  room_a.space_cost_per_server = 260.0;
  room_a.wan_cost_per_megabit = 3.0e-5;
  room_a.power_cost_per_kwh = 0.18;
  room_a.labor_cost_per_admin = 9000.0;
  AsIsDataCenter room_b = room_a;
  room_b.name = "server-room-b";
  room_b.position = {99.0, 0.0};
  room_b.space_cost_per_server = 240.0;
  room_b.power_cost_per_kwh = 0.20;
  room_b.labor_cost_per_admin = 9500.0;
  instance.as_is_centers = {room_a, room_b};
  instance.as_is_placement = {0, 0, 1};
  instance.as_is_latency_ms = {{5.0, 60.0}, {60.0, 5.0}};

  // Plan.
  const CostModel model(instance);
  const EtransformPlanner planner;
  SolveContext ctx;
  const PlannerReport report = planner.plan(PlanInput(model), ctx);

  std::printf("as-is monthly cost:\n%s\n",
              render_cost_breakdown(model.as_is_cost()).c_str());
  std::printf("%s\n", render_plan_summary(instance, report.plan).c_str());
  for (int i = 0; i < instance.num_groups(); ++i) {
    const int j = report.plan.primary[static_cast<std::size_t>(i)];
    std::printf("  %-10s -> %-12s (avg latency %.1f ms)\n",
                instance.groups[static_cast<std::size_t>(i)].name.c_str(),
                instance.sites[static_cast<std::size_t>(j)].name.c_str(),
                model.average_latency(i, j));
  }
  return 0;
}
