// etransformd — the eTransform planner as a long-running HTTP service.
//
//   etransformd [--port P] [--workers N] [--max-queue N] [--max-jobs N]
//               [--cache-mb M] [--default-time-limit ms] [--slo-ms ms]
//               [--telemetry-dir DIR] [--log-json] [--port-file FILE] [-v]
//
// Binds 127.0.0.1:P (default 7447; 0 = kernel-assigned ephemeral port, the
// bound port is printed and optionally written to --port-file for
// harnesses). Serves until SIGINT/SIGTERM: the first signal drains — new
// plan/replan requests get 503, queued and running jobs finish, then the
// process exits 0. A second signal force-kills.
//
// See DESIGN.md §12 and the README's "Running the daemon" for the endpoint
// reference and curl examples.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/error.h"
#include "common/logging.h"
#include "common/shutdown.h"
#include "server/daemon.h"

using namespace etransform;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: etransformd [--port P] [--workers N] [--max-queue N]\n"
      "                   [--max-jobs N] [--cache-mb M]\n"
      "                   [--default-time-limit ms] [--slo-ms ms]\n"
      "                   [--telemetry-dir DIR] [--log-json]\n"
      "                   [--port-file FILE] [-v]\n"
      "  --port P       listen port on 127.0.0.1 (default 7447; 0 = pick\n"
      "                 an ephemeral port)\n"
      "  --workers N    solver worker threads (default: hardware\n"
      "                 concurrency)\n"
      "  --max-queue N  reject plan/replan with 429 beyond this queue\n"
      "                 depth (default 64)\n"
      "  --max-jobs N   retain at most N jobs; the oldest terminal jobs\n"
      "                 age out (default 1024)\n"
      "  --cache-mb M   result cache budget in MiB (default 64; 0 off)\n"
      "  --default-time-limit ms  deadline for jobs that send none\n"
      "  --slo-ms ms    flag jobs slower than this as anomalies and keep\n"
      "                 their flight-recorder trace (default 0 = off)\n"
      "  --telemetry-dir DIR  dump anomalous job traces as they happen and\n"
      "                 write trace.json/metrics.prom at shutdown\n"
      "  --log-json     one JSON object per log line (machine-parseable)\n"
      "  --port-file F  write the bound port to F once listening\n"
      "  -v             info-level logging\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarning);
  server::DaemonOptions options;
  options.port = 7447;
  std::string port_file;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--port" && a + 1 < argc) {
      options.port = std::atoi(argv[++a]);
    } else if (flag == "--workers" && a + 1 < argc) {
      options.workers = std::atoi(argv[++a]);
    } else if (flag == "--max-queue" && a + 1 < argc) {
      options.max_queue_depth = std::atoi(argv[++a]);
    } else if (flag == "--max-jobs" && a + 1 < argc) {
      options.max_jobs = std::atoi(argv[++a]);
    } else if (flag == "--cache-mb" && a + 1 < argc) {
      options.cache_bytes =
          static_cast<std::size_t>(std::atoll(argv[++a])) << 20;
    } else if (flag == "--default-time-limit" && a + 1 < argc) {
      options.default_time_limit_ms = std::atof(argv[++a]);
    } else if (flag == "--slo-ms" && a + 1 < argc) {
      options.slo_ms = std::atof(argv[++a]);
    } else if (flag == "--telemetry-dir" && a + 1 < argc) {
      options.telemetry_dir = argv[++a];
    } else if (flag == "--log-json") {
      set_log_format(LogFormat::kJson);
    } else if (flag == "--port-file" && a + 1 < argc) {
      port_file = argv[++a];
    } else if (flag == "-v") {
      set_log_level(LogLevel::kInfo);
    } else {
      return usage();
    }
  }

  try {
    server::PlannerDaemon daemon(options);
    daemon.start();
    std::printf("etransformd listening on 127.0.0.1:%d\n", daemon.port());
    std::fflush(stdout);
    if (!port_file.empty()) {
      // Written last, after the socket is live: harnesses poll for this
      // file and connect the moment it appears.
      std::ofstream out(port_file);
      if (!out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", port_file.c_str());
        return 2;
      }
      out << daemon.port() << "\n";
    }

    ShutdownSignal shutdown;
    shutdown.on_signal([&daemon] { daemon.request_drain(); });
    shutdown.wait();  // first SIGINT/SIGTERM
    std::fprintf(stderr, "etransformd: drain requested, waiting for %s\n",
                 "in-flight jobs");
    daemon.stop();  // waits for every admitted job, then closes the socket
    std::fprintf(stderr, "etransformd: drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
