// Standalone optimization engine (the right half of the paper's Fig. 5).
//
// The eTransform prototype wrote a CPLEX LP file and invoked the solver as a
// separate engine; this tool is that engine. It reads a model in CPLEX LP
// format, solves it (simplex for pure LPs, branch-and-bound when integer
// variables are present), and writes a solution file.
//
// Usage:
//   lp_tool model.lp [solution.out]    solve a file
//   lp_tool --demo                     solve a built-in example
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.h"
#include "lp/lp_engine.h"
#include "lp/lp_format.h"
#include "lp/presolve.h"
#include "milp/branch_and_bound.h"

using namespace etransform;

namespace {

const char kDemo[] = R"(\ demo knapsack
Maximize
 obj: 60 take0 + 100 take1 + 120 take2
Subject To
 weight: 10 take0 + 20 take1 + 30 take2 <= 50
Binary
 take0 take1 take2
End
)";

int solve_text(const std::string& text, const char* output_path) {
  const lp::Model model = lp::parse_lp(text);
  std::fprintf(stderr, "parsed: %d variables, %d constraints, %s\n",
               model.num_variables(), model.num_constraints(),
               model.has_integer_variables() ? "MILP" : "LP");
  SolveContext ctx;
  const lp::PresolveResult presolved = lp::presolve(model, ctx);
  lp::LpSolution solution;
  if (presolved.status == lp::PresolveStatus::kInfeasible) {
    std::fprintf(stderr, "presolve: infeasible\n");
    solution.status = lp::SolveStatus::kInfeasible;
  } else {
    std::fprintf(stderr, "presolve: removed %d variables, %d rows\n",
                 presolved.vars_removed, presolved.rows_removed);
    const lp::Model& reduced = presolved.reduced;
    if (reduced.has_integer_variables()) {
      const milp::BranchAndBoundSolver solver;
      const milp::MilpSolution milp_solution = solver.solve(reduced, ctx);
      std::fprintf(stderr, "branch-and-bound: %s, %d nodes, %d LP pivots\n",
                   milp::to_string(milp_solution.status), milp_solution.nodes,
                   milp_solution.lp_iterations);
      solution.status =
          milp_solution.status == milp::MilpStatus::kOptimal ||
                  milp_solution.status == milp::MilpStatus::kFeasible
              ? lp::SolveStatus::kOptimal
              : lp::SolveStatus::kInfeasible;
      solution.objective = milp_solution.objective;
      if (solution.status == lp::SolveStatus::kOptimal) {
        solution.values = lp::postsolve(presolved, milp_solution.values);
      }
    } else {
      const lp::LpEngine solver;
      solution = solver.solve(reduced, ctx);
      std::fprintf(stderr, "simplex: %s in %d pivots\n",
                   lp::to_string(solution.status), solution.iterations);
      if (solution.status == lp::SolveStatus::kOptimal) {
        solution.values = lp::postsolve(presolved, solution.values);
      }
    }
  }
  const std::string rendered = lp::write_solution(model, solution);
  if (output_path != nullptr) {
    std::ofstream out(output_path);
    out << rendered;
    std::fprintf(stderr, "solution written to %s\n", output_path);
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  return solution.status == lp::SolveStatus::kOptimal ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string(argv[1]) == "--demo") {
      return solve_text(kDemo, nullptr);
    }
    if (argc < 2) {
      std::fprintf(stderr, "usage: %s <model.lp> [solution.out] | --demo\n",
                   argv[0]);
      return 1;
    }
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return solve_text(buffer.str(), argc >= 3 ? argv[2] : nullptr);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
