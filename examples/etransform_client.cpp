// etransform_client — a command-line client for etransformd.
//
//   etransform_client --port P plan <in.etf> [--engine auto|exact|heuristic]
//       [--dr] [--time-limit ms] [--no-cache] [--no-wait] [--progress]
//   etransform_client --port P replan <base-job> [--pin group=site ...]
//       [--forbid group=site ...] [--no-cache] [--no-wait] [--progress]
//   etransform_client --port P status <job>
//   etransform_client --port P events <job>
//   etransform_client --port P progress <job>
//   etransform_client --port P trace <job>
//   etransform_client --port P cancel <job>
//   etransform_client --port P health | metrics
//
// `plan` submits the instance and (by default) polls until the job is
// terminal, then prints the result document. Everything speaks the JSON
// schema in src/server/api_json.h; this client is deliberately thin — curl
// works just as well (see README).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "server/http.h"

using namespace etransform;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: etransform_client --port P <command>\n"
      "  plan <in.etf> [--engine auto|exact|heuristic] [--dr]\n"
      "       [--time-limit ms] [--no-cache] [--no-wait] [--progress]\n"
      "  replan <base-job> [--pin group=site ...] [--forbid group=site ...]\n"
      "       [--no-cache] [--no-wait] [--progress]\n"
      "  status <job> | events <job> | progress <job> | trace <job>\n"
      "  cancel <job> | health | metrics\n"
      "  (--progress prints a live node/bound/gap ticker to stderr while\n"
      "   waiting; `trace` prints the job's Chrome trace JSON)\n");
  return 1;
}

server::ClientResponse request_or_die(int port, const std::string& method,
                                      const std::string& target,
                                      const std::string& body) {
  server::ClientResponse response;
  std::string error;
  if (!server::http_request(port, method, target, body, &response, &error)) {
    throw InvalidInputError("etransformd at port " + std::to_string(port) +
                            ": " + error);
  }
  return response;
}

/// One --progress ticker line: the newest sample of GET /progress, printed
/// to stderr (stdout stays reserved for the result document). Best-effort —
/// a failed poll just skips a tick.
void print_progress_tick(int port, long long job) {
  server::ClientResponse response;
  std::string error;
  if (!server::http_request(port, "GET",
                            "/v1/jobs/" + std::to_string(job) + "/progress",
                            "", &response, &error) ||
      response.status != 200) {
    return;
  }
  json::Value doc;
  if (!json::parse(response.body, doc, nullptr)) return;
  const json::Value* timeline = doc.get("timeline");
  if (timeline == nullptr || !timeline->is_array() || timeline->arr.empty()) {
    return;
  }
  const json::Value& last = timeline->arr.back();
  const auto num = [&last](const char* key, double fallback) {
    const json::Value* v = last.get(key);
    return v != nullptr && v->is_number() ? v->num : fallback;
  };
  std::string line = "progress: " +
                     std::to_string(static_cast<long long>(num("nodes", 0))) +
                     " nodes";
  if (const json::Value* bound = last.get("bound")) {
    line += ", bound " + std::to_string(bound->num);
  }
  if (const json::Value* incumbent = last.get("incumbent")) {
    line += ", incumbent " + std::to_string(incumbent->num);
  }
  if (const json::Value* gap = last.get("gap")) {
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.2f%%", gap->num * 100.0);
    line += ", gap ";
    line += pct;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

/// Polls GET /v1/jobs/<id> until the state is terminal; prints the final
/// document (and, with `progress`, a ~200ms live ticker on stderr).
/// Returns 0 on "done", 3 otherwise.
int wait_for_job(int port, long long job, bool progress) {
  int polls = 0;
  while (true) {
    const server::ClientResponse response = request_or_die(
        port, "GET", "/v1/jobs/" + std::to_string(job), "");
    json::Value doc;
    if (response.status != 200 || !json::parse(response.body, doc, nullptr)) {
      std::fprintf(stderr, "error: poll failed (%d): %s\n", response.status,
                   response.body.c_str());
      return 3;
    }
    const json::Value* state = doc.get("state");
    const std::string s = state != nullptr ? state->str : "";
    if (s == "done" || s == "cancelled" || s == "failed") {
      std::printf("%s\n", response.body.c_str());
      return s == "done" ? 0 : 3;
    }
    if (progress && polls % 4 == 0) print_progress_tick(port, job);
    ++polls;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

/// A group/site reference: all-digit specs travel as JSON numbers (the
/// daemon resolves numbers as indices, strings as names).
json::Value entity_ref(const std::string& spec) {
  if (!spec.empty() &&
      spec.find_first_not_of("0123456789") == std::string::npos) {
    return json::Value::number(std::stod(spec));
  }
  return json::Value::string(spec);
}

/// Splits "group=site" into a {"group": ..., "site": ...} object.
json::Value parse_pair(const std::string& spec, const char* flag) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos) {
    throw InvalidInputError(std::string(flag) + " expects group=site (got '" +
                            spec + "')");
  }
  json::Value pair = json::Value::object();
  pair.set("group", entity_ref(spec.substr(0, eq)));
  pair.set("site", entity_ref(spec.substr(eq + 1)));
  return pair;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    int port = 7447;
    std::vector<std::string> args;
    for (int a = 1; a < argc; ++a) {
      if (std::strcmp(argv[a], "--port") == 0 && a + 1 < argc) {
        port = std::atoi(argv[++a]);
      } else {
        args.emplace_back(argv[a]);
      }
    }
    if (args.empty()) return usage();
    const std::string command = args[0];

    if (command == "health" || command == "metrics") {
      const server::ClientResponse response = request_or_die(
          port, "GET", command == "health" ? "/healthz" : "/metrics", "");
      std::printf("%s\n", response.body.c_str());
      return response.status == 200 ? 0 : 3;
    }
    if (command == "status" || command == "events" || command == "cancel" ||
        command == "progress" || command == "trace") {
      if (args.size() < 2) return usage();
      const std::string job = args[1];
      const std::string target =
          "/v1/jobs/" + job +
          (command == "status" ? "" : "/" + command);
      const server::ClientResponse response = request_or_die(
          port, command == "cancel" ? "POST" : "GET", target, "");
      std::printf("%s\n", response.body.c_str());
      return response.status == 200 ? 0 : 3;
    }

    if (command != "plan" && command != "replan") return usage();
    if (args.size() < 2) return usage();

    json::Value body = json::Value::object();
    bool wait = true;
    bool progress_ticker = false;
    if (command == "plan") {
      std::ifstream in(args[1]);
      if (!in) throw InvalidInputError("cannot open '" + args[1] + "'");
      std::stringstream text;
      text << in.rdbuf();
      body.set("instance", json::Value::string(text.str()));
    } else {
      body.set("base_job", json::Value::number(std::atof(args[1].c_str())));
    }
    json::Value options = json::Value::object();
    json::Value pins = json::Value::array();
    json::Value forbids = json::Value::array();
    for (std::size_t a = 2; a < args.size(); ++a) {
      const std::string& flag = args[a];
      if (flag == "--engine" && a + 1 < args.size()) {
        options.set("engine", json::Value::string(args[++a]));
      } else if (flag == "--dr") {
        options.set("dr", json::Value::boolean(true));
      } else if (flag == "--time-limit" && a + 1 < args.size()) {
        body.set("time_limit_ms",
                 json::Value::number(std::atof(args[++a].c_str())));
      } else if (flag == "--no-cache") {
        body.set("cache", json::Value::boolean(false));
      } else if (flag == "--no-wait") {
        wait = false;
      } else if (flag == "--progress") {
        progress_ticker = true;
      } else if (flag == "--pin" && a + 1 < args.size()) {
        pins.push(parse_pair(args[++a], "--pin"));
      } else if (flag == "--forbid" && a + 1 < args.size()) {
        forbids.push(parse_pair(args[++a], "--forbid"));
      } else {
        return usage();
      }
    }
    if (!options.obj.empty()) body.set("options", std::move(options));
    if (!pins.arr.empty() || !forbids.arr.empty()) {
      json::Value delta = json::Value::object();
      if (!pins.arr.empty()) delta.set("pin", std::move(pins));
      if (!forbids.arr.empty()) delta.set("forbid", std::move(forbids));
      body.set("delta", std::move(delta));
    }

    const server::ClientResponse response = request_or_die(
        port, "POST", command == "plan" ? "/v1/plan" : "/v1/replan",
        body.dump());
    if (response.status != 200 && response.status != 202) {
      std::fprintf(stderr, "error (%d): %s\n", response.status,
                   response.body.c_str());
      return 3;
    }
    json::Value submitted;
    if (!json::parse(response.body, submitted, nullptr) ||
        submitted.get("job") == nullptr) {
      std::fprintf(stderr, "error: malformed response: %s\n",
                   response.body.c_str());
      return 3;
    }
    const long long job =
        static_cast<long long>(submitted.get("job")->num);
    if (!wait) {
      std::printf("%s\n", response.body.c_str());
      return 0;
    }
    return wait_for_job(port, job, progress_ticker);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
