// etransform_cli — the complete Fig. 5 pipeline as a command-line tool.
//
//   etransform_cli generate <enterprise1|florida|federal|rightsizing> [-o out.etf]
//       Export one of the paper's datasets as an .etf instance file.
//   etransform_cli validate <in.etf>
//       Parse + validate an instance; print its Table II-style summary.
//   etransform_cli asis <in.etf>
//       Price the current ("as-is") estate.
//   etransform_cli plan <in.etf> [--dr] [--omega X] [--engine auto|exact|
//       heuristic] [--no-economies] [--lp-out model.lp] [--time-limit ms]
//       [--cuts on|off|gomory|cover] [--cut-rounds N]
//       [--branching pseudocost|most-fractional]
//       [--lp-algorithm primal|dual|auto] [--no-presolve]
//       [--trace] [--stats-json stats.json]
//       Compute the "to-be" plan and print the full report. --lp-out also
//       writes the MILP in CPLEX LP format (feed it to lp_tool, or to an
//       actual CPLEX, to audit the optimization engine). --cuts /
//       --cut-rounds / --branching / --lp-algorithm tune the exact
//       engine's root cutting-plane loop, branching rule, and LP pivoting
//       algorithm (milp::SolverOptions).
//       --trace streams solver events (presolve reductions, simplex phases,
//       B&B incumbents and bound moves) to stderr as they happen;
//       --stats-json dumps the hierarchical SolveStats tree (per-phase wall
//       times, pivot/node counters, incumbent/bound trace) as JSON.
//
//   Concurrency (SolveFarm):
//       --jobs N           solve on N worker threads: scenario sweeps and
//                          the sensitivity scan fan out across a SolveService
//       --threads N        in-solve parallelism: shard each exact solve's
//                          branch-and-bound frontier over N tree-search
//                          workers (composes with --jobs; 0 = hardware)
//       --deterministic    fixed-epoch parallel search whose explored tree
//                          is identical at every --threads value
//       --sweep key=v1,v2  run a what-if sweep instead of a single plan; keys
//                          are omega, dr-cost, latency-penalty, cuts
//                          (races the four cut configurations) and horizon
//                          (period counts; repeatable, scenarios run in the
//                          order given)
//       --race             race the exact and heuristic engines; the first
//                          finisher cancels the other
//
//   Multi-period planning (time-expanded formulation, wire api_version 2):
//       --horizon N        plan over N demand periods instead of the single
//                          static snapshot
//       --traffic-curve S  diurnal|seasonal demand cycle between --trough
//                          and --peak multipliers (default 0.4 .. 1.0)
//       --migration-cost R charge R per server moved between periods
//       --static-horizon   lock one placement across all periods (the "best
//                          static plan over the horizon" competitor)
//       --online V         also play the Albers-Quedenfeld online
//                          right-sizing game (lazy|prob) and report its
//                          total against the offline plan
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "baselines/online_rightsizing.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/shutdown.h"
#include "common/stopwatch.h"
#include "datagen/generators.h"
#include "lp/lp_format.h"
#include "model/instance_io.h"
#include "planner/etransform_planner.h"
#include "planner/formulation.h"
#include "planner/migration.h"
#include "report/report.h"
#include "report/sensitivity.h"
#include "server/api_json.h"
#include "service/scenario_set.h"
#include "service/solve_farm.h"
#include "telemetry/artifacts.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

using namespace etransform;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  etransform_cli generate <enterprise1|florida|federal|rightsizing> [-o out.etf]\n"
      "  etransform_cli validate <in.etf>\n"
      "  etransform_cli asis <in.etf>\n"
      "  etransform_cli plan <in.etf> [--dr] [--omega X] [--sensitivity]\n"
      "      [--engine auto|exact|heuristic] [--no-economies]\n"
      "      [--lp-out model.lp] [--time-limit ms]\n"
      "      [--cuts on|off|gomory|cover] [--cut-rounds N]\n"
      "      [--branching pseudocost|most-fractional]\n"
      "      [--lp-algorithm primal|dual|auto] [--no-presolve]\n"
      "      [--trace] [--stats-json stats.json] [--result-json out.json]\n"
      "      [--telemetry-dir DIR]\n"
      "      [--migrate] [--wan-budget megabits] [--max-moves N]\n"
      "      [--horizon N] [--traffic-curve diurnal|seasonal]\n"
      "      [--peak X] [--trough X] [--migration-cost R]\n"
      "      [--static-horizon] [--online lazy|prob]\n"
      "      [--jobs N] [--threads N] [--deterministic]\n"
      "      [--sweep omega|dr-cost|latency-penalty|cuts|horizon=...]\n"
      "      [--race]\n"
      "  --cuts selects the root cutting-plane configuration for exact\n"
      "  solves (default on = Gomory + cover); --cut-rounds caps separation\n"
      "  rounds; --branching picks the variable-selection rule (default\n"
      "  pseudocost, reliability-initialized by strong branching);\n"
      "  --lp-algorithm picks the LP engine's pivoting rule (default auto:\n"
      "  dual simplex on dual-feasible warm restarts — node re-solves and\n"
      "  cut rounds — primal otherwise; primal/dual force one algorithm).\n"
      "  --jobs runs N *solves* concurrently (SolveFarm: sweeps, races, the\n"
      "  sensitivity scan); --threads parallelizes the tree search *inside*\n"
      "  each exact solve (they compose: 4 jobs x 8 threads = 32 node LPs in\n"
      "  flight). --threads 0 uses one worker per hardware thread.\n"
      "  --deterministic makes the parallel search explore a fixed tree:\n"
      "  identical objective, node count, and iterations at any --threads.\n"
      "  --no-presolve solves the raw formulation. --sweep cuts=all races\n"
      "  the four cut configurations as scenarios (the value list is\n"
      "  ignored). Multi-period planning: --horizon N plans over N demand\n"
      "  periods (uniform at multiplier 1, or following a --traffic-curve\n"
      "  cycle between --trough and --peak); --migration-cost charges R per\n"
      "  server moved between consecutive periods; --static-horizon locks\n"
      "  one placement across every period (the best-static competitor);\n"
      "  --online additionally plays the online right-sizing game (lazy =\n"
      "  deterministic hysteresis, prob = randomized thresholds) and reports\n"
      "  its total against the offline plan. --sweep horizon=4,8 sweeps\n"
      "  period counts, each with a /locked companion scenario.\n"
      "  --telemetry-dir writes trace.json (Chrome Trace Event\n"
      "  Format, open in Perfetto), metrics.prom (Prometheus text\n"
      "  exposition), and stats.json into DIR after the run.\n");
  return 1;
}

ConsolidationInstance load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidInputError("cannot open '" + path + "'");
  return parse_instance(in);
}

int cmd_generate(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string which = argv[2];
  ConsolidationInstance instance;
  if (which == "enterprise1") instance = make_enterprise1();
  else if (which == "florida") instance = make_florida();
  else if (which == "federal") instance = make_federal();
  else if (which == "rightsizing") instance = make_rightsizing_estate({});
  else return usage();
  std::string out_path = which + ".etf";
  for (int a = 3; a + 1 < argc; ++a) {
    if (std::strcmp(argv[a], "-o") == 0) out_path = argv[a + 1];
  }
  std::ofstream out(out_path);
  if (!out) throw InvalidInputError("cannot write '" + out_path + "'");
  write_instance(instance, out);
  std::printf("wrote %s (%d groups, %d sites, %d servers)\n",
              out_path.c_str(), instance.num_groups(), instance.num_sites(),
              instance.total_servers());
  return 0;
}

int cmd_validate(int argc, char** argv) {
  if (argc < 3) return usage();
  const ConsolidationInstance instance = load(argv[2]);
  std::printf("%s\nOK\n", render_instance_summary(instance).c_str());
  return 0;
}

int cmd_asis(int argc, char** argv) {
  if (argc < 3) return usage();
  const ConsolidationInstance instance = load(argv[2]);
  const CostModel model(instance);
  std::printf("as-is monthly cost (%d latency violations):\n%s",
              model.as_is_latency_violations(),
              render_cost_breakdown(model.as_is_cost()).c_str());
  return 0;
}

/// The multi-period flags, shared by the plan and sweep paths.
struct HorizonCli {
  int periods = 0;             // --horizon (0 = static unless a curve is set)
  std::string curve_shape;     // --traffic-curve (empty = uniform periods)
  double peak = 1.0;           // --peak
  double trough = 0.4;         // --trough
  Money migration_cost = 0.0;  // --migration-cost

  /// The horizon the flags describe; `periods_override` (the horizon= sweep
  /// values) wins over --horizon when nonzero. Static when neither a period
  /// count nor a curve was requested.
  [[nodiscard]] PlanningHorizon build(const ConsolidationInstance& instance,
                                      int periods_override = 0) const {
    const int num_periods = periods_override > 0 ? periods_override : periods;
    if (curve_shape.empty()) {
      if (num_periods <= 0) return {};
      return PlanningHorizon::uniform(num_periods, migration_cost);
    }
    TrafficCurveSpec spec;
    spec.shape = curve_shape == "seasonal"
                     ? TrafficCurveSpec::Shape::kSeasonal
                     : TrafficCurveSpec::Shape::kDiurnal;
    if (num_periods > 0) spec.num_periods = num_periods;
    spec.peak_multiplier = peak;
    spec.trough_multiplier = trough;
    spec.migration_cost_per_server = migration_cost;
    spec.num_groups = instance.num_groups();
    return make_traffic_curve(spec);
  }
};

std::vector<double> parse_value_list(const std::string& csv) {
  std::vector<double> values;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) values.push_back(std::stod(item));
  if (values.empty()) throw InvalidInputError("empty sweep value list");
  return values;
}

/// Builds the ScenarioSet for the --sweep specs, in the order given.
ScenarioSet build_sweep_set(const ConsolidationInstance& instance,
                            const PlannerOptions& base,
                            const std::vector<std::string>& specs,
                            const HorizonCli& horizon_flags) {
  ScenarioSet set(instance);
  for (const std::string& spec : specs) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos) {
      throw InvalidInputError("--sweep expects key=v1,v2,... (got '" + spec +
                              "')");
    }
    const std::string key = spec.substr(0, eq);
    if (key == "cuts") {
      // The cut sweep enumerates the four fixed configurations; the value
      // list only marks the spec as present.
      set.add_cut_config_sweep(base);
      continue;
    }
    const std::vector<double> values = parse_value_list(spec.substr(eq + 1));
    if (key == "omega") {
      set.add_omega_sweep(values, base);
    } else if (key == "dr-cost") {
      set.add_dr_cost_sweep(values, base);
    } else if (key == "latency-penalty") {
      set.add_latency_penalty_sweep(values, base);
    } else if (key == "horizon") {
      // Values are period counts; each expands the --traffic-curve flags (or
      // a uniform timeline) at that length, plus a /locked companion so the
      // sweep reports the right-sizing payoff directly.
      ScenarioSpec horizon_spec;
      horizon_spec.base = base;
      horizon_spec.locked_horizon_variants = true;
      for (const double value : values) {
        const int num_periods = static_cast<int>(value);
        if (num_periods < 1 || value != static_cast<double>(num_periods)) {
          throw InvalidInputError(
              "--sweep horizon= values must be positive period counts");
        }
        ScenarioSpec::HorizonCase horizon_case;
        horizon_case.name =
            (horizon_flags.curve_shape.empty()
                 ? "T"
                 : horizon_flags.curve_shape + "-T") +
            std::to_string(num_periods);
        horizon_case.horizon = horizon_flags.build(instance, num_periods);
        horizon_spec.horizons.push_back(std::move(horizon_case));
      }
      set.add_spec(horizon_spec);
    } else {
      throw InvalidInputError(
          "unknown sweep key '" + key +
          "' (expected omega, dr-cost, latency-penalty, cuts, or horizon)");
    }
  }
  return set;
}

/// Flushes telemetry to `dir` and reports where it went (run epilogue shared
/// by the plan/sweep/race paths). No-op when `dir` is empty.
void flush_telemetry(const std::string& dir,
                     const telemetry::TraceRecorder* recorder,
                     const telemetry::MetricsRegistry* registry,
                     const std::string& stats_json) {
  if (dir.empty()) return;
  telemetry::ArtifactPaths paths;
  std::string error;
  if (!telemetry::write_run_artifacts(dir, recorder, registry, stats_json,
                                      &paths, &error)) {
    throw InvalidInputError("--telemetry-dir: " + error);
  }
  std::fprintf(stderr, "telemetry written to %s (%zu spans, %llu dropped)\n",
               dir.c_str(), recorder != nullptr ? recorder->recorded() : 0,
               static_cast<unsigned long long>(
                   recorder != nullptr ? recorder->dropped() : 0));
}

int run_sweep(const ConsolidationInstance& instance,
              const PlannerOptions& options,
              const std::vector<std::string>& specs,
              const HorizonCli& horizon_flags, int jobs, double time_limit_ms,
              const std::string& telemetry_dir) {
  const ScenarioSet set =
      build_sweep_set(instance, options, specs, horizon_flags);
  // Declared before the service: workers may still touch the recorder while
  // the service drains in its destructor.
  telemetry::TraceRecorder recorder;
  telemetry::MetricsRegistry registry;
  SolveService service(jobs);
  // A signal cancels every queued and running scenario; the farm drains and
  // partial results are reported rather than dying mid-solve.
  ShutdownSignal shutdown;
  shutdown.on_signal([&service] { service.cancel_all(); });
  if (!telemetry_dir.empty()) {
    recorder.set_current_thread_name("main");
    service.attach_telemetry(&recorder, &registry);
  }
  std::printf("sweeping %zu scenarios on %d worker thread%s...\n", set.size(),
              service.num_threads(), service.num_threads() == 1 ? "" : "s");
  const auto results = run_scenarios(set, service, time_limit_ms);
  std::printf("%s", render_scenario_results(results).c_str());
  if (!telemetry_dir.empty()) {
    // stats.json: one entry per scenario, in scenario order.
    std::string stats_json = "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i > 0) stats_json += ',';
      stats_json += results[i].failed ? "null" : results[i].report.stats.to_json();
    }
    stats_json += ']';
    flush_telemetry(telemetry_dir, &recorder, &registry, stats_json);
  }
  return 0;
}

int run_race(const ConsolidationInstance& instance,
             const PlannerOptions& options, int jobs, double time_limit_ms,
             const std::string& telemetry_dir) {
  telemetry::TraceRecorder recorder;
  telemetry::MetricsRegistry registry;
  SolveService service(jobs);
  ShutdownSignal shutdown;
  shutdown.on_signal([&service] { service.cancel_all(); });
  if (!telemetry_dir.empty()) {
    recorder.set_current_thread_name("main");
    service.attach_telemetry(&recorder, &registry);
  }
  const RaceOutcome outcome =
      race_portfolio(service, instance, options, time_limit_ms);
  std::printf("portfolio race: %s wins (first finisher: %s)\n",
              outcome.winner_engine.c_str(), outcome.first_finisher.c_str());
  std::printf("  exact leg    : %-9s %8.1f ms\n",
              to_string(outcome.exact_state), outcome.exact_ms);
  std::printf("  heuristic leg: %-9s %8.1f ms\n",
              to_string(outcome.heuristic_state), outcome.heuristic_ms);
  std::printf("%s", render_plan_summary(instance, outcome.best.plan).c_str());
  if (!telemetry_dir.empty()) {
    flush_telemetry(telemetry_dir, &recorder, &registry,
                    outcome.best.stats.to_json());
  }
  return 0;
}

int cmd_plan(int argc, char** argv) {
  if (argc < 3) return usage();
  const ConsolidationInstance instance = load(argv[2]);

  PlannerOptions options;
  std::string lp_out;
  std::string stats_json_out;
  std::string result_json_out;
  std::string telemetry_dir;
  bool trace = false;
  bool sensitivity = false;
  bool migrate = false;
  bool race = false;
  bool lock_placement = false;
  int jobs = 1;
  double time_limit_ms = 0.0;
  std::string online;
  std::vector<std::string> sweep_specs;
  MigrationLimits migration_limits;
  HorizonCli horizon_flags;
  for (int a = 3; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--sensitivity") {
      sensitivity = true;
    } else if (flag == "--jobs" && a + 1 < argc) {
      jobs = std::stoi(argv[++a]);
      if (jobs < 1) return usage();
    } else if (flag == "--threads" && a + 1 < argc) {
      options.milp.search.threads = std::stoi(argv[++a]);
    } else if (flag == "--deterministic") {
      options.milp.search.deterministic = true;
    } else if (flag == "--sweep" && a + 1 < argc) {
      sweep_specs.push_back(argv[++a]);
    } else if (flag == "--race") {
      race = true;
    } else if (flag == "--migrate") {
      migrate = true;
    } else if (flag == "--wan-budget" && a + 1 < argc) {
      migration_limits.wan_budget_megabits = std::stod(argv[++a]);
      migrate = true;
    } else if (flag == "--max-moves" && a + 1 < argc) {
      migration_limits.max_moves = std::stoi(argv[++a]);
      migrate = true;
    } else if (flag == "--horizon" && a + 1 < argc) {
      horizon_flags.periods = std::stoi(argv[++a]);
      if (horizon_flags.periods < 1) return usage();
    } else if (flag == "--traffic-curve" && a + 1 < argc) {
      horizon_flags.curve_shape = argv[++a];
      if (horizon_flags.curve_shape != "diurnal" &&
          horizon_flags.curve_shape != "seasonal") {
        return usage();
      }
    } else if (flag == "--peak" && a + 1 < argc) {
      horizon_flags.peak = std::stod(argv[++a]);
    } else if (flag == "--trough" && a + 1 < argc) {
      horizon_flags.trough = std::stod(argv[++a]);
    } else if (flag == "--migration-cost" && a + 1 < argc) {
      horizon_flags.migration_cost = std::stod(argv[++a]);
    } else if (flag == "--static-horizon") {
      lock_placement = true;
    } else if (flag == "--online" && a + 1 < argc) {
      online = argv[++a];
      if (online != "lazy" && online != "prob") return usage();
    } else if (flag == "--dr") {
      options.enable_dr = true;
    } else if (flag == "--no-economies") {
      options.economies_of_scale = false;
    } else if (flag == "--omega" && a + 1 < argc) {
      options.business_impact_omega = std::stod(argv[++a]);
    } else if (flag == "--engine" && a + 1 < argc) {
      const std::string engine = argv[++a];
      if (engine == "exact") {
        options.engine = PlannerOptions::Engine::kExact;
      } else if (engine == "heuristic") {
        options.engine = PlannerOptions::Engine::kHeuristic;
      } else if (engine != "auto") {
        return usage();
      }
    } else if (flag == "--lp-out" && a + 1 < argc) {
      lp_out = argv[++a];
    } else if (flag == "--time-limit" && a + 1 < argc) {
      time_limit_ms = std::stod(argv[++a]);
      // The MILP-internal budget too, so a plain `plan` (no SolveFarm job
      // wrapping it in a deadline context) still honors the flag.
      options.milp.search.time_limit_ms = static_cast<int>(time_limit_ms);
    } else if (flag == "--cuts" && a + 1 < argc) {
      const std::string mode = argv[++a];
      if (mode == "on") {
        options.milp.cuts.enable = true;
        options.milp.cuts.gomory = true;
        options.milp.cuts.cover = true;
      } else if (mode == "off") {
        options.milp.cuts.enable = false;
      } else if (mode == "gomory") {
        options.milp.cuts.enable = true;
        options.milp.cuts.gomory = true;
        options.milp.cuts.cover = false;
      } else if (mode == "cover") {
        options.milp.cuts.enable = true;
        options.milp.cuts.gomory = false;
        options.milp.cuts.cover = true;
      } else {
        return usage();
      }
    } else if (flag == "--cut-rounds" && a + 1 < argc) {
      options.milp.cuts.max_rounds = std::stoi(argv[++a]);
    } else if (flag == "--branching" && a + 1 < argc) {
      const std::string rule = argv[++a];
      if (rule == "pseudocost") {
        options.milp.branching.rule =
            milp::BranchingOptions::Rule::kPseudocost;
      } else if (rule == "most-fractional") {
        options.milp.branching.rule =
            milp::BranchingOptions::Rule::kMostFractional;
      } else {
        return usage();
      }
    } else if (flag == "--lp-algorithm" && a + 1 < argc) {
      const std::string algorithm = argv[++a];
      if (algorithm == "primal") {
        options.milp.lp.mode = lp::SolveMode::kPrimal;
      } else if (algorithm == "dual") {
        options.milp.lp.mode = lp::SolveMode::kDual;
      } else if (algorithm == "auto") {
        options.milp.lp.mode = lp::SolveMode::kAuto;
      } else {
        return usage();
      }
    } else if (flag == "--no-presolve") {
      options.milp.presolve.enable = false;
    } else if (flag == "--trace") {
      trace = true;
    } else if (flag == "--stats-json" && a + 1 < argc) {
      stats_json_out = argv[++a];
    } else if (flag == "--result-json" && a + 1 < argc) {
      result_json_out = argv[++a];
    } else if (flag == "--telemetry-dir" && a + 1 < argc) {
      telemetry_dir = argv[++a];
    } else {
      return usage();
    }
  }

  // Solver events go through the logging layer (serialized, thread-tagged)
  // rather than raw stderr, so traced concurrent runs stay line-atomic.
  if (trace && log_level() > LogLevel::kInfo) set_log_level(LogLevel::kInfo);

  if (!sweep_specs.empty()) {
    return run_sweep(instance, options, sweep_specs, horizon_flags, jobs,
                     time_limit_ms, telemetry_dir);
  }
  if (race) {
    return run_race(instance, options, jobs, time_limit_ms, telemetry_dir);
  }

  const PlanningHorizon horizon = horizon_flags.build(instance);
  if (horizon.is_static()) {
    if (lock_placement) {
      throw InvalidInputError(
          "--static-horizon requires --horizon or --traffic-curve");
    }
    if (!online.empty()) {
      throw InvalidInputError(
          "--online requires --horizon or --traffic-curve");
    }
  }
  if (!online.empty() && options.enable_dr) {
    throw InvalidInputError(
        "--online is a non-DR right-sizing baseline (drop --dr)");
  }

  const CostModel model(instance);
  if (!lp_out.empty()) {
    FormulationOptions formulation_options;
    formulation_options.enable_dr = options.enable_dr;
    formulation_options.business_impact_omega =
        options.business_impact_omega;
    formulation_options.economies_of_scale = options.economies_of_scale;
    formulation_options.backup_sizing = BackupSizing::kSharedJoint;
    const Formulation formulation =
        build_formulation(model, formulation_options);
    std::ofstream out(lp_out);
    if (!out) throw InvalidInputError("cannot write '" + lp_out + "'");
    lp::write_lp(formulation.model, out);
    std::fprintf(stderr, "MILP written to %s (%d vars, %d rows)\n",
                 lp_out.c_str(), formulation.model.num_variables(),
                 formulation.model.num_constraints());
  }

  SolveContext ctx;
  telemetry::TraceRecorder recorder;
  telemetry::MetricsRegistry registry;
  if (!telemetry_dir.empty()) {
    recorder.set_current_thread_name("main");
    ctx.set_trace(&recorder);
    ctx.set_metrics(&registry);
  }
  if (trace) {
    ctx.events.on_presolve_reduction = [](const PresolveReductionEvent& e) {
      ET_LOG(kInfo) << "[trace] presolve " << e.rule << ": -" << e.rows_removed
                    << " rows -" << e.vars_removed << " vars";
    };
    ctx.events.on_simplex_phase = [](const SimplexPhaseEvent& e) {
      ET_LOG(kInfo) << "[trace] simplex phase " << e.phase << " done: "
                    << e.pivots << " pivots, obj " << e.objective;
    };
    ctx.events.on_incumbent = [](const IncumbentEvent& e) {
      ET_LOG(kInfo) << "[trace] incumbent " << e.objective << " at node "
                    << e.node << " (" << e.time_ms << " ms)";
    };
    ctx.events.on_bound_improvement = [](const BoundEvent& e) {
      ET_LOG(kInfo) << "[trace] bound " << e.bound << " (incumbent "
                    << e.incumbent << ") at node " << e.node;
    };
    ctx.events.on_node = [](const NodeEvent& e) {
      if (e.node % 1000 != 0) return;  // keep the stream readable
      ET_LOG(kInfo) << "[trace] node " << e.node << " depth " << e.depth
                    << " relax " << e.relaxation << " bound " << e.best_bound
                    << " open " << e.open_nodes;
    };
  }

  // SIGINT/SIGTERM cancels the SolveContext instead of killing the process
  // mid-solve: the stack unwinds at its next cancellation poll and the
  // best-so-far plan is reported, flagged interrupted. A second signal
  // force-kills.
  ShutdownSignal shutdown;
  shutdown.on_signal([&ctx] { ctx.request_cancel(); });

  const EtransformPlanner planner(options);
  PlanInput input(model);
  input.horizon = horizon;
  input.lock_placement = lock_placement;
  const Stopwatch solve_watch;
  const PlannerReport report = planner.plan(input, ctx);
  const double solve_ms = solve_watch.elapsed_ms();
  flush_telemetry(telemetry_dir, &recorder, &registry,
                  report.stats.to_json());
  if (!stats_json_out.empty()) {
    std::ofstream out(stats_json_out);
    if (!out) {
      throw InvalidInputError("cannot write '" + stats_json_out + "'");
    }
    out << report.stats.to_json() << "\n";
    std::fprintf(stderr, "solve stats written to %s\n",
                 stats_json_out.c_str());
  }
  if (!result_json_out.empty()) {
    // The same result document etransformd serves for this solve — the
    // server e2e check diffs the two.
    std::ofstream out(result_json_out);
    if (!out) {
      throw InvalidInputError("cannot write '" + result_json_out + "'");
    }
    out << server::plan_result_json(instance, report, solve_ms).dump() << "\n";
    std::fprintf(stderr, "result written to %s\n", result_json_out.c_str());
  }
  if (report.is_multi_period()) {
    std::printf("%s", render_multi_period_summary(horizon, report.multi)
                          .c_str());
  } else {
    std::printf("%s", render_plan_summary(instance, report.plan).c_str());
    if (!instance.as_is_placement.empty()) {
      const Money as_is = model.as_is_cost().total();
      std::printf("\nas-is total: %s  ->  to-be total: %s (%.1f%%)\n",
                  format_money_compact(as_is).c_str(),
                  format_money_compact(report.plan.cost.total()).c_str(),
                  (report.plan.cost.total() - as_is) / as_is * 100.0);
    }
  }
  std::printf("solver: %s%s%s\n",
              report.used_exact_solver ? "exact MILP" : "heuristic",
              report.proven_optimal ? " (proven optimal)" : "",
              report.interrupted ? " (interrupted)" : "");
  if (!online.empty()) {
    // The online game never sees period t+1 when placing t — its total is
    // the price of planning without the demand forecast the offline
    // time-expanded solve enjoys.
    OnlineRightSizingOptions online_options;
    online_options.variant =
        online == "prob" ? OnlineRightSizingOptions::Variant::kProbabilistic
                         : OnlineRightSizingOptions::Variant::kLazy;
    const MultiPeriodPlan online_plan =
        plan_online_rightsizing(model, horizon, online_options);
    const Money offline = report.objective();
    std::printf(
        "\nonline right-sizing (%s): total %s vs offline %s (%+.1f%%), "
        "%d group moves (%lld servers)\n",
        to_string(online_options.variant),
        format_money_compact(online_plan.cost.total()).c_str(),
        format_money_compact(offline).c_str(),
        offline > 0.0
            ? (online_plan.cost.total() - offline) / offline * 100.0
            : 0.0,
        online_plan.total_moves,
        static_cast<long long>(online_plan.moved_servers));
  }
  if (trace) {
    std::printf("\n%s", render_solve_stats(report.stats).c_str());
  }
  if (sensitivity) {
    SensitivityReport sensitivity_report;
    if (jobs > 1) {
      ThreadPool pool(jobs);
      sensitivity_report = analyze_sensitivity(model, report.plan, pool);
    } else {
      sensitivity_report = analyze_sensitivity(model, report.plan);
    }
    std::printf("\n%s",
                render_sensitivity(instance, sensitivity_report).c_str());
  }
  if (migrate) {
    const MigrationSchedule schedule =
        schedule_migration(instance, report.plan, migration_limits);
    std::printf("\nmigration: %d waves (lower bound %d)\n",
                schedule.wave_count(), schedule.lower_bound_waves);
    for (std::size_t w = 0; w < schedule.waves.size(); ++w) {
      const auto& wave = schedule.waves[w];
      std::printf("  wave %zu: %zu moves, %.2f Tb", w + 1,
                  wave.groups.size(), wave.data_megabits / 1e6);
      if (!wave.provisioned_sites.empty()) {
        std::printf(", provisions %zu DR pools",
                    wave.provisioned_sites.size());
      }
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarning);
  try {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "validate") return cmd_validate(argc, argv);
    if (command == "asis") return cmd_asis(argc, argv);
    if (command == "plan") return cmd_plan(argc, argv);
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
