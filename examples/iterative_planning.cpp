// The admin interface for iterative modification (paper Fig. 5).
//
// An administrator reviews the initial plan and pushes back: one group is
// legally pinned to a specific site, another may not use a site slated for
// closure, and two groups carrying redundant copies of the same business
// process must not share a data center. After each change the session
// re-plans and reports the cost of the constraint.
#include <cstdio>

#include "common/logging.h"
#include "common/money.h"
#include "common/random.h"
#include "datagen/generators.h"
#include "planner/admin.h"
#include "report/report.h"

using namespace etransform;

int main() {
  set_log_level(LogLevel::kWarning);
  Rng rng(2026);
  ScenarioSession session(make_random_instance(rng, 16, 5, 3));

  const PlannerReport& initial = session.replan();
  const Money base_cost = initial.plan.cost.total();
  std::printf("initial plan: %s/month, %d sites\n\n",
              format_money_compact(base_cost).c_str(),
              initial.plan.sites_used());

  // Round 1: compliance pins group 0 to site 4.
  session.pin_group(0, 4);
  const Money pinned = session.replan().plan.cost.total();
  std::printf("after pinning %s -> %s: %s (+%s)\n",
              session.instance().groups[0].name.c_str(),
              session.instance().sites[4].name.c_str(),
              format_money_compact(pinned).c_str(),
              format_money_compact(pinned - base_cost).c_str());

  // Round 2: site 1 is being decommissioned for group 3's data class.
  session.forbid_site(3, 1);
  const Money forbidden = session.replan().plan.cost.total();
  std::printf("after forbidding %s at %s: %s\n",
              session.instance().groups[3].name.c_str(),
              session.instance().sites[1].name.c_str(),
              format_money_compact(forbidden).c_str());

  // Round 3: shared-risk separation between groups 5 and 6.
  session.require_separation(5, 6);
  const PlannerReport& final_report = session.replan();
  std::printf("after separating %s | %s: %s\n\n",
              session.instance().groups[5].name.c_str(),
              session.instance().groups[6].name.c_str(),
              format_money_compact(final_report.plan.cost.total()).c_str());

  std::printf("modification log:\n");
  for (const auto& entry : session.modification_log()) {
    std::printf("  - %s\n", entry.c_str());
  }
  std::printf("\nfinal to-be state:\n%s\n",
              render_plan_summary(session.instance(),
                                  final_report.plan).c_str());
  return 0;
}
