// Case study: consolidate the enterprise1 estate (the paper's §II example —
// 190 application groups on 1070 servers across 67 data centers, 18,913
// users on four continents) into 10 target sites.
//
// Runs the full Fig. 4 pipeline for one dataset: as-is cost, manual and
// greedy baselines, the eTransform plan, the comparison table, and the
// detailed "to-be" state.
#include <cstdio>

#include "baselines/baselines.h"
#include "common/logging.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"
#include "report/report.h"

using namespace etransform;

int main() {
  set_log_level(LogLevel::kInfo);
  const ConsolidationInstance instance = make_enterprise1();
  std::printf("%s\n", render_instance_summary(instance).c_str());

  const CostModel model(instance);
  std::vector<AlgorithmResult> results;
  results.push_back(summarize("AS-IS", model.as_is_cost(),
                              model.as_is_latency_violations()));
  results.push_back(summarize("MANUAL", plan_manual(model, false)));
  results.push_back(summarize("GREEDY", plan_greedy(model, false)));

  const EtransformPlanner planner;
  SolveContext ctx;
  const PlannerReport report = planner.plan(PlanInput(model), ctx);
  results.push_back(summarize("eTRANSFORM", report.plan));

  std::printf("%s\n", render_comparison(instance.name, results).c_str());
  std::printf("%s\n", render_plan_summary(instance, report.plan).c_str());
  return 0;
}
