// Integrated disaster-recovery planning (paper §IV).
//
// Plans the enterprise1 estate with DR enabled and shows how the
// business-impact parameter omega trades consolidation against blast
// radius: tighter omega spreads application groups over more sites so a
// single-site disaster takes out fewer of them.
#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"
#include "report/report.h"

using namespace etransform;

int main() {
  set_log_level(LogLevel::kWarning);
  // A moderate estate keeps the joint DR optimization exact.
  EnterpriseSpec spec = enterprise1_spec();
  spec.num_groups = 24;
  spec.total_servers = 180;
  spec.num_as_is_centers = 8;
  spec.num_target_sites = 6;
  spec.total_users = 2400.0;
  const ConsolidationInstance instance = make_enterprise(spec);
  const CostModel model(instance);

  TextTable table({"omega", "sites used", "max groups/site", "DR servers",
                   "total cost"});
  for (const double omega : {1.0, 0.5, 0.25}) {
    PlannerOptions options;
    options.enable_dr = true;
    options.business_impact_omega = omega;
    options.milp.search.time_limit_ms = 20000;
    const EtransformPlanner planner(options);
    SolveContext ctx;
    const PlannerReport report = planner.plan(PlanInput(model), ctx);

    std::vector<int> per_site(static_cast<std::size_t>(instance.num_sites()),
                              0);
    for (const int j : report.plan.primary) {
      per_site[static_cast<std::size_t>(j)] += 1;
    }
    int busiest = 0;
    for (const int count : per_site) busiest = std::max(busiest, count);
    table.add_row({format_double(omega, 2),
                   std::to_string(report.plan.sites_used()),
                   std::to_string(busiest),
                   std::to_string(report.plan.total_backup_servers()),
                   format_money_compact(report.plan.cost.total())});
    if (omega == 1.0) {
      std::printf("%s\n", render_plan_summary(instance, report.plan).c_str());
    }
  }
  std::printf("business-impact sweep:\n%s\n", table.render().c_str());

  // Single-failure shared pools vs multi-failure dedicated mirrors (§IV-A):
  // sharing is exactly what the integrated plan saves.
  TextTable sizing({"DR sizing", "backup servers", "total cost"});
  for (const bool dedicated : {false, true}) {
    PlannerOptions options;
    options.enable_dr = true;
    options.milp.search.time_limit_ms = 20000;
    options.dr_sizing = dedicated ? PlannerOptions::DrSizing::kDedicated
                                  : PlannerOptions::DrSizing::kShared;
    const EtransformPlanner planner(options);
    SolveContext ctx;
    const PlannerReport report = planner.plan(PlanInput(model), ctx);
    sizing.add_row({dedicated ? "dedicated (multi-failure)"
                              : "shared (single failure)",
                    std::to_string(report.plan.total_backup_servers()),
                    format_money_compact(report.plan.cost.total())});
  }
  std::printf("backup sizing comparison:\n%s\n", sizing.render().c_str());
  return 0;
}
