// E2-E4 — Fig. 4(a-e): non-DR consolidation case studies.
//
// For each of the three datasets (enterprise1, Florida, Federal) this prints
// the paper's four bars — AS-IS, MANUAL, GREEDY, eTRANSFORM — split into
// operational cost and latency penalty, plus the Fig. 4(d) percentage
// reductions and the Fig. 4(e) latency-violation counts.
//
// Reproduction target (shape, not absolute dollars): every algorithm beats
// AS-IS; eTransform achieves the largest reduction (paper: -43/-58/-59%)
// with ~zero latency violations; MANUAL is latency-blind and pays large
// penalties; GREEDY sits between.
//
// Scale note: enterprise1 and Florida run the exact MILP; Federal
// (1900 groups x 100 sites = 190k binaries) runs the heuristic engine with
// a Lagrangian lower bound — the documented substitution for CPLEX.
#include <cmath>
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_common.h"
#include "common/logging.h"
#include "common/table.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"
#include "report/report.h"

namespace etransform {
namespace {

void run_dataset(const ConsolidationInstance& instance) {
  const CostModel model(instance);

  std::vector<AlgorithmResult> results;
  results.push_back(summarize("AS-IS", model.as_is_cost(),
                              model.as_is_latency_violations()));
  results.push_back(summarize("MANUAL", plan_manual(model, false)));
  results.push_back(summarize("GREEDY", plan_greedy(model, false)));

  PlannerOptions options;
  options.compute_lower_bound = true;
  const EtransformPlanner planner(options);
  SolveContext ctx;
  const PlannerReport report = planner.plan(PlanInput(model), ctx);
  results.push_back(summarize("eTRANSFORM", report.plan));

  std::printf("%s", render_comparison(instance.name, results).c_str());
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& r : results) {
      rows.push_back({r.label, format_double(r.operational_cost, 2),
                      format_double(r.latency_penalty, 2),
                      std::to_string(r.latency_violations)});
    }
    bench::export_csv("fig4_" + instance.name,
                      {"algorithm", "cost", "latency penalty", "violations"},
                      rows);
  }
  if (!std::isnan(report.lower_bound)) {
    std::printf("  solver: %s, lower bound %s (gap %.1f%%)\n",
                report.used_exact_solver ? "exact MILP" : "heuristic",
                format_money_compact(report.lower_bound).c_str(),
                report.lower_bound > 0.0
                    ? (report.plan.cost.total() - report.lower_bound) /
                          report.lower_bound * 100.0
                    : 0.0);
  } else {
    std::printf("  solver: %s\n",
                report.used_exact_solver ? "exact MILP" : "heuristic");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace etransform

int main() {
  using namespace etransform;
  set_log_level(LogLevel::kError);
  bench::banner(
      "Fig. 4 — consolidation without DR",
      "cost + latency penalty per algorithm; reduction vs AS-IS (Fig. 4d);\n"
      "latency violations (Fig. 4e)");
  run_dataset(make_enterprise1());
  run_dataset(make_florida());
  run_dataset(make_federal());
  return 0;
}
