// Ablations — design choices DESIGN.md calls out, on the enterprise1 estate.
//
// (1) Economies of scale: plan with volume discounts modeled vs priced at
//     base rates only (the evaluation always applies the true schedules, so
//     the delta is the value of *modeling* the discounts, Schoomer rows).
// (2) Business impact omega: how much does capping the per-site blast
//     radius cost (DR mode)?
// (3) Local search: greedy seed alone vs seed + polish (the heuristic
//     engine's two halves).
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_common.h"
#include "common/logging.h"
#include "common/table.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"
#include "planner/local_search.h"
#include "report/report.h"

namespace etransform {
namespace {

void ablate_economies() {
  const auto instance = make_enterprise1();
  const CostModel model(instance);
  TextTable table({"economies of scale modeled", "plan total cost"});
  for (const bool modeled : {true, false}) {
    PlannerOptions options;
    options.economies_of_scale = modeled;
    options.milp.search.time_limit_ms = 20000;
    const EtransformPlanner planner(options);
    SolveContext ctx;
    const PlannerReport report = planner.plan(PlanInput(model), ctx);
    table.add_row({modeled ? "yes" : "no (base prices)",
                   format_money_compact(report.plan.cost.total())});
  }
  std::printf("(1) value of modeling volume discounts\n%s\n",
              table.render().c_str());
}

void ablate_omega() {
  EnterpriseSpec spec = enterprise1_spec();
  spec.num_groups = 30;
  spec.total_servers = 200;
  spec.num_as_is_centers = 10;
  spec.num_target_sites = 6;
  spec.total_users = 3000.0;
  const auto instance = make_enterprise(spec);
  const CostModel model(instance);
  TextTable table({"omega", "sites used", "total cost"});
  for (const double omega : {1.0, 0.5, 0.34, 0.2}) {
    PlannerOptions options;
    options.enable_dr = true;
    options.business_impact_omega = omega;
    options.milp.search.time_limit_ms = 15000;
    const EtransformPlanner planner(options);
    SolveContext ctx;
    const PlannerReport report = planner.plan(PlanInput(model), ctx);
    table.add_row({format_double(omega, 2),
                   std::to_string(report.plan.sites_used()),
                   format_money_compact(report.plan.cost.total())});
  }
  std::printf("(2) business-impact parameter (DR mode)\n%s\n",
              table.render().c_str());
}

void ablate_local_search() {
  const auto instance = make_federal();
  const CostModel model(instance);
  GreedyOptions seed;
  seed.volume_aware = true;
  Plan plan = plan_greedy(model, false, seed);
  const Money before = plan.cost.total();
  improve_plan(model, plan);
  TextTable table({"stage", "total cost"});
  table.add_row({"greedy seed", format_money_compact(before)});
  table.add_row({"seed + local search", format_money_compact(
                                            plan.cost.total())});
  std::printf("(3) local-search contribution (federal scale)\n%s\n",
              table.render().c_str());
}

}  // namespace
}  // namespace etransform

int main() {
  using namespace etransform;
  set_log_level(LogLevel::kError);
  bench::banner("Ablations", "design-choice studies on the case datasets");
  ablate_economies();
  ablate_omega();
  ablate_local_search();
  return 0;
}
