// E12 — solver performance microbenchmarks (google-benchmark).
//
// Times the substrate the reproduction is built on: the bounded-variable
// simplex on dense random LPs and transportation LPs, branch-and-bound on
// knapsacks and assignment MILPs, the full planner on enterprise1-scale
// instances, and the Lagrangian bound at Federal scale.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/random.h"
#include "cost/cost_model.h"
#include "datagen/generators.h"
#include "lp/lp_engine.h"
#include "milp/branch_and_bound.h"
#include "planner/etransform_planner.h"
#include "planner/lagrangian.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace etransform {
namespace {

lp::Model random_lp(std::uint64_t seed, int vars, int rows) {
  Rng rng(seed);
  lp::Model model;
  std::vector<lp::Term> objective;
  for (int j = 0; j < vars; ++j) {
    const int v = model.add_continuous("x" + std::to_string(j), 0.0,
                                       rng.uniform(1.0, 10.0));
    objective.push_back({v, rng.uniform(-5.0, 5.0)});
  }
  model.set_objective(lp::Sense::kMinimize, objective);
  for (int i = 0; i < rows; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < vars; ++j) {
      if (rng.uniform() < 0.3) terms.push_back({j, rng.uniform(-2.0, 2.0)});
    }
    model.add_constraint("r" + std::to_string(i), terms,
                         lp::Relation::kLessEqual, rng.uniform(1.0, 20.0));
  }
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const auto model = random_lp(7, static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(0)) / 2);
  const lp::LpEngine solver;
  for (auto _ : state) {
    SolveContext ctx;
    benchmark::DoNotOptimize(solver.solve(model, ctx));
  }
}
BENCHMARK(BM_SimplexRandomLp)->Arg(50)->Arg(200)->Arg(800);

// Same solve with a live trace recorder and metrics registry attached —
// the delta against BM_SimplexRandomLp is the telemetry overhead on a
// fully-instrumented solve.
void BM_SimplexRandomLpTraced(benchmark::State& state) {
  const auto model = random_lp(7, static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(0)) / 2);
  const lp::LpEngine solver;
  telemetry::TraceRecorder recorder(/*capacity_per_thread=*/1 << 20);
  telemetry::MetricsRegistry registry;
  for (auto _ : state) {
    if (recorder.recorded() > (1 << 19)) {
      state.PauseTiming();
      recorder.clear();
      state.ResumeTiming();
    }
    SolveContext ctx;
    ctx.set_trace(&recorder);
    ctx.set_metrics(&registry);
    benchmark::DoNotOptimize(solver.solve(model, ctx));
  }
}
BENCHMARK(BM_SimplexRandomLpTraced)->Arg(200)->Arg(800);

// The pre-revised-simplex baseline: dense explicit inverse + full Dantzig
// pricing, matching the legacy tableau implementation. Kept so the
// sparse-vs-dense speedup stays measured release over release.
void BM_SimplexRandomLpDense(benchmark::State& state) {
  const auto model = random_lp(7, static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(0)) / 2);
  lp::SimplexOptions options;
  options.use_dense_fallback = true;
  options.pricing = lp::PricingRule::kDantzig;
  const lp::LpEngine solver(options);
  for (auto _ : state) {
    SolveContext ctx;
    benchmark::DoNotOptimize(solver.solve(model, ctx));
  }
}
BENCHMARK(BM_SimplexRandomLpDense)->Arg(50)->Arg(200)->Arg(800);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  Rng rng(11);
  lp::Model model;
  std::vector<lp::Term> objective;
  std::vector<lp::Term> cap;
  double total = 0.0;
  for (int i = 0; i < state.range(0); ++i) {
    const int b = model.add_binary("b" + std::to_string(i));
    objective.push_back({b, rng.uniform(1.0, 30.0)});
    const double w = rng.uniform(1.0, 10.0);
    total += w;
    cap.push_back({b, w});
  }
  model.set_objective(lp::Sense::kMaximize, objective);
  model.add_constraint("cap", cap, lp::Relation::kLessEqual, 0.4 * total);
  const milp::BranchAndBoundSolver solver;
  for (auto _ : state) {
    SolveContext ctx;
    benchmark::DoNotOptimize(solver.solve(model, ctx));
  }
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(20)->Arg(40);

/// Generalized-assignment MILP: `tasks` binaries per agent, one "assign
/// exactly once" equality per task, one capacity row per agent. The
/// branching-heavy structure is where warm-started nodes pay off.
lp::Model assignment_milp(int tasks, int agents) {
  Rng rng(23);
  lp::Model model;
  std::vector<std::vector<int>> x(static_cast<std::size_t>(tasks));
  std::vector<lp::Term> objective;
  for (int t = 0; t < tasks; ++t) {
    for (int a = 0; a < agents; ++a) {
      const int v = model.add_binary("x_" + std::to_string(t) + "_" +
                                     std::to_string(a));
      x[static_cast<std::size_t>(t)].push_back(v);
      objective.push_back({v, rng.uniform(1.0, 20.0)});
    }
  }
  model.set_objective(lp::Sense::kMinimize, objective);
  for (int t = 0; t < tasks; ++t) {
    std::vector<lp::Term> row;
    for (const int v : x[static_cast<std::size_t>(t)]) row.push_back({v, 1.0});
    model.add_constraint("assign" + std::to_string(t), row,
                         lp::Relation::kEqual, 1.0);
  }
  for (int a = 0; a < agents; ++a) {
    std::vector<lp::Term> row;
    for (int t = 0; t < tasks; ++t) {
      row.push_back({x[static_cast<std::size_t>(t)][static_cast<std::size_t>(a)],
                     rng.uniform(1.0, 8.0)});
    }
    // Capacity factor 3.0 keeps the instance feasible but branching-heavy
    // (tight enough that the relaxation stays fractional down the tree).
    model.add_constraint("cap" + std::to_string(a), row,
                         lp::Relation::kLessEqual, 3.0 * tasks / agents);
  }
  return model;
}

void BM_BranchAndBoundAssignment(benchmark::State& state) {
  const auto model = assignment_milp(static_cast<int>(state.range(0)), 4);
  milp::SolverOptions options;
  options.search.warm_start_nodes = state.range(1) != 0;
  // cuts:0 is the legacy configuration (no root cuts, most-fractional
  // branching); cuts:1 is production (Gomory+cover cuts, reliability
  // pseudocosts). The pair measures what the cutting pipeline buys.
  if (state.range(2) != 0) {
    options.cuts.enable = true;
    options.branching.rule = milp::BranchingOptions::Rule::kPseudocost;
  } else {
    options.cuts.enable = false;
    options.branching.rule = milp::BranchingOptions::Rule::kMostFractional;
  }
  // dual:0 forces every re-solve through the primal repair path (the
  // pre-LpEngine behavior); dual:1 is production kAuto, where node and
  // cut-round restarts reoptimize with the bound-flipping dual simplex.
  // The pair measures what dual reoptimization buys in LP iterations.
  options.lp.mode =
      state.range(3) != 0 ? lp::SolveMode::kAuto : lp::SolveMode::kPrimal;
  const milp::BranchAndBoundSolver solver(options);
  long long lp_iterations = 0;
  long long nodes = 0;
  for (auto _ : state) {
    SolveContext ctx;
    const auto solution = solver.solve(model, ctx);
    benchmark::DoNotOptimize(solution);
    lp_iterations += solution.lp_iterations;
    nodes += solution.nodes;
  }
  state.counters["lp_iters"] =
      benchmark::Counter(static_cast<double>(lp_iterations),
                         benchmark::Counter::kAvgIterations);
  state.counters["nodes"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BranchAndBoundAssignment)
    ->ArgsProduct({{12, 20}, {0, 1}, {0, 1}, {0, 1}})
    ->ArgNames({"tasks", "warm", "cuts", "dual"});

// Thread scaling of the parallel tree search on the production
// configuration (warm starts, cuts, dual reoptimization), in deterministic
// mode: the explored tree is byte-identical at every thread count, so the
// real_time ratio between threads:1 and threads:8 is a pure measure of
// parallel LP throughput — exactly what the CI speedup fence in
// cmake/check_bench_regression.cmake wants. (The free-running mode is
// faster on average but its tree shape is timing-dependent, which would
// make a wall-clock fence flaky.) The objective is still cross-checked
// against the classic sequential optimum.
void BM_BranchAndBoundAssignmentThreads(benchmark::State& state) {
  const auto model = assignment_milp(static_cast<int>(state.range(0)), 4);
  milp::SolverOptions options;
  options.search.threads = static_cast<int>(state.range(1));
  options.search.deterministic = true;
  const milp::BranchAndBoundSolver solver(options);
  const double reference = [&model] {
    const milp::BranchAndBoundSolver sequential;
    SolveContext ctx;
    return sequential.solve(model, ctx).objective;
  }();
  long long lp_iterations = 0;
  long long nodes = 0;
  for (auto _ : state) {
    SolveContext ctx;
    const auto solution = solver.solve(model, ctx);
    benchmark::DoNotOptimize(solution);
    if (std::abs(solution.objective - reference) > 1e-6) {
      state.SkipWithError("parallel objective diverged from sequential");
      break;
    }
    lp_iterations += solution.lp_iterations;
    nodes += solution.nodes;
  }
  state.counters["lp_iters"] =
      benchmark::Counter(static_cast<double>(lp_iterations),
                         benchmark::Counter::kAvgIterations);
  state.counters["nodes"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BranchAndBoundAssignmentThreads)
    ->ArgsProduct({{20}, {1, 2, 4, 8}})
    ->ArgNames({"tasks", "threads"})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_PlannerEnterprise1(benchmark::State& state) {
  const auto instance = make_enterprise1();
  const CostModel model(instance);
  PlannerOptions options;
  options.milp.search.time_limit_ms = 20000;
  const EtransformPlanner planner(options);
  for (auto _ : state) {
    SolveContext ctx;
    benchmark::DoNotOptimize(planner.plan(PlanInput(model), ctx));
  }
}
BENCHMARK(BM_PlannerEnterprise1)->Unit(benchmark::kMillisecond)->Iterations(1);

// Time-expanded multi-period MILP on the right-sizing estate: T per-period
// placement blocks coupled by migration move variables. Deterministic mode
// keeps the explored tree thread-count-invariant so the nodes/lp_iters
// counters feed the same CI regression fence as the assignment MILPs.
void BM_BranchAndBoundMultiPeriod(benchmark::State& state) {
  const auto instance = make_rightsizing_estate({});
  const CostModel model(instance);
  TrafficCurveSpec curve;
  curve.num_periods = static_cast<int>(state.range(0));
  curve.trough_multiplier = 0.25;
  curve.migration_cost_per_server = 0.5;
  const PlanningHorizon horizon = make_traffic_curve(curve);
  PlannerOptions options;
  options.engine = PlannerOptions::Engine::kExact;
  options.milp.search.time_limit_ms = 20000;
  options.milp.search.deterministic = true;
  const EtransformPlanner planner(options);
  long long lp_iterations = 0;
  long long nodes = 0;
  for (auto _ : state) {
    SolveContext ctx;
    PlanInput input(model);
    input.horizon = horizon;
    const PlannerReport report = planner.plan(input, ctx);
    benchmark::DoNotOptimize(report);
    nodes += report.milp_nodes;
    lp_iterations += static_cast<long long>(report.stats.deep_metric("pivots"));
  }
  state.counters["lp_iters"] =
      benchmark::Counter(static_cast<double>(lp_iterations),
                         benchmark::Counter::kAvgIterations);
  state.counters["nodes"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BranchAndBoundMultiPeriod)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"periods"})
    ->Unit(benchmark::kMillisecond);

void BM_GreedyFederal(benchmark::State& state) {
  const auto instance = make_federal();
  const CostModel model(instance);
  PlannerOptions options;
  options.engine = PlannerOptions::Engine::kHeuristic;
  options.local_search.max_passes = 3;
  options.local_search.enable_swaps = false;
  const EtransformPlanner planner(options);
  for (auto _ : state) {
    SolveContext ctx;
    benchmark::DoNotOptimize(planner.plan(PlanInput(model), ctx));
  }
}
BENCHMARK(BM_GreedyFederal)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_LagrangianFederal(benchmark::State& state) {
  const auto instance = make_federal();
  const CostModel model(instance);
  LagrangianOptions options;
  options.max_iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lagrangian_lower_bound(model, options));
  }
}
BENCHMARK(BM_LagrangianFederal)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace etransform

BENCHMARK_MAIN();
