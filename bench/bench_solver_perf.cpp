// E12 — solver performance microbenchmarks (google-benchmark).
//
// Times the substrate the reproduction is built on: the bounded-variable
// simplex on dense random LPs and transportation LPs, branch-and-bound on
// knapsacks and assignment MILPs, the full planner on enterprise1-scale
// instances, and the Lagrangian bound at Federal scale.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "cost/cost_model.h"
#include "datagen/generators.h"
#include "lp/simplex.h"
#include "milp/branch_and_bound.h"
#include "planner/etransform_planner.h"
#include "planner/lagrangian.h"

namespace etransform {
namespace {

lp::Model random_lp(std::uint64_t seed, int vars, int rows) {
  Rng rng(seed);
  lp::Model model;
  std::vector<lp::Term> objective;
  for (int j = 0; j < vars; ++j) {
    const int v = model.add_continuous("x" + std::to_string(j), 0.0,
                                       rng.uniform(1.0, 10.0));
    objective.push_back({v, rng.uniform(-5.0, 5.0)});
  }
  model.set_objective(lp::Sense::kMinimize, objective);
  for (int i = 0; i < rows; ++i) {
    std::vector<lp::Term> terms;
    for (int j = 0; j < vars; ++j) {
      if (rng.uniform() < 0.3) terms.push_back({j, rng.uniform(-2.0, 2.0)});
    }
    model.add_constraint("r" + std::to_string(i), terms,
                         lp::Relation::kLessEqual, rng.uniform(1.0, 20.0));
  }
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const auto model = random_lp(7, static_cast<int>(state.range(0)),
                               static_cast<int>(state.range(0)) / 2);
  const lp::SimplexSolver solver;
  for (auto _ : state) {
    SolveContext ctx;
    benchmark::DoNotOptimize(solver.solve(model, ctx));
  }
}
BENCHMARK(BM_SimplexRandomLp)->Arg(50)->Arg(200)->Arg(800);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  Rng rng(11);
  lp::Model model;
  std::vector<lp::Term> objective;
  std::vector<lp::Term> cap;
  double total = 0.0;
  for (int i = 0; i < state.range(0); ++i) {
    const int b = model.add_binary("b" + std::to_string(i));
    objective.push_back({b, rng.uniform(1.0, 30.0)});
    const double w = rng.uniform(1.0, 10.0);
    total += w;
    cap.push_back({b, w});
  }
  model.set_objective(lp::Sense::kMaximize, objective);
  model.add_constraint("cap", cap, lp::Relation::kLessEqual, 0.4 * total);
  const milp::BranchAndBoundSolver solver;
  for (auto _ : state) {
    SolveContext ctx;
    benchmark::DoNotOptimize(solver.solve(model, ctx));
  }
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(20)->Arg(40);

void BM_PlannerEnterprise1(benchmark::State& state) {
  const auto instance = make_enterprise1();
  const CostModel model(instance);
  PlannerOptions options;
  options.milp.time_limit_ms = 20000;
  const EtransformPlanner planner(options);
  for (auto _ : state) {
    SolveContext ctx;
    benchmark::DoNotOptimize(planner.plan(model, ctx));
  }
}
BENCHMARK(BM_PlannerEnterprise1)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_GreedyFederal(benchmark::State& state) {
  const auto instance = make_federal();
  const CostModel model(instance);
  PlannerOptions options;
  options.engine = PlannerOptions::Engine::kHeuristic;
  options.local_search.max_passes = 3;
  options.local_search.enable_swaps = false;
  const EtransformPlanner planner(options);
  for (auto _ : state) {
    SolveContext ctx;
    benchmark::DoNotOptimize(planner.plan(model, ctx));
  }
}
BENCHMARK(BM_GreedyFederal)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_LagrangianFederal(benchmark::State& state) {
  const auto instance = make_federal();
  const CostModel model(instance);
  LagrangianOptions options;
  options.max_iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lagrangian_lower_bound(model, options));
  }
}
BENCHMARK(BM_LagrangianFederal)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace etransform

BENCHMARK_MAIN();
