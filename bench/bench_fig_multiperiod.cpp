// Multi-period right-sizing race: time-expanded consolidation vs a locked
// static plan vs the online right-sizing baselines.
//
// Estate: make_rightsizing_estate — two cheap small sites plus progressively
// larger expensive ones, sized so the demand peak only fits by spilling into
// the expensive sites while the troughs pack into the cheap ones. Demand: a
// diurnal curve (T=4, trough 0.25) with a migration charge per moved server.
//
// Competitors, all totalled by assemble_multi_period:
//   STATIC-LOCKED  one placement for the whole horizon (lock_placement),
//                  i.e. the best the v1 single-snapshot planner can do
//   TIME-EXPANDED  the per-period MILP with migration coupling
//   ONLINE-LAZY    Albers & Quedenfeld ski-rental hysteresis (2-competitive)
//   ONLINE-PROB    the randomized variant (e/(e-1)-competitive)
//
// Reproduction target (shape): TIME-EXPANDED strictly beats STATIC-LOCKED
// (the right-sizing payoff), and the online baselines land between the two.
// A second table sweeps the migration rate: as moves get pricier the
// time-expanded plan moves less and converges to the locked cost.
#include <cstdio>

#include "baselines/online_rightsizing.h"
#include "bench_common.h"
#include "common/logging.h"
#include "common/table.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"
#include "report/report.h"

namespace etransform {
namespace {

struct RaceRow {
  std::string label;
  MultiPeriodPlan multi;
  bool proven_optimal = false;
};

PlanningHorizon make_curve(Money migration_rate) {
  TrafficCurveSpec curve;
  curve.num_periods = 4;
  curve.trough_multiplier = 0.25;
  curve.migration_cost_per_server = migration_rate;
  return make_traffic_curve(curve);
}

MultiPeriodPlan solve(const CostModel& model, const PlanningHorizon& horizon,
                      bool lock, bool* proven = nullptr) {
  PlannerOptions options;
  options.engine = PlannerOptions::Engine::kExact;
  options.milp.search.time_limit_ms = 30000;
  const EtransformPlanner planner(options);
  SolveContext ctx;
  PlanInput input(model);
  input.horizon = horizon;
  input.lock_placement = lock;
  const PlannerReport report = planner.plan(input, ctx);
  if (proven != nullptr) *proven = report.proven_optimal;
  return report.multi;
}

void run_race(const ConsolidationInstance& instance, Money migration_rate) {
  const CostModel model(instance);
  const PlanningHorizon horizon = make_curve(migration_rate);

  std::vector<RaceRow> rows;
  RaceRow locked{"STATIC-LOCKED", {}, false};
  locked.multi = solve(model, horizon, true, &locked.proven_optimal);
  rows.push_back(std::move(locked));
  RaceRow expanded{"TIME-EXPANDED", {}, false};
  expanded.multi = solve(model, horizon, false, &expanded.proven_optimal);
  rows.push_back(std::move(expanded));
  for (const auto variant : {OnlineRightSizingOptions::Variant::kLazy,
                             OnlineRightSizingOptions::Variant::kProbabilistic}) {
    OnlineRightSizingOptions online;
    online.variant = variant;
    RaceRow row{to_string(variant), plan_online_rightsizing(model, horizon, online),
                false};
    rows.push_back(std::move(row));
  }

  const double locked_total = rows[0].multi.cost.total();
  std::printf("%s, diurnal T=%d, migration $%.2f/server\n", instance.name.c_str(),
              horizon.num_periods(), migration_rate);
  std::printf("  %-14s %12s %12s %7s %8s %s\n", "algorithm", "horizon total",
              "migration", "moves", "vs lock", "provenance");
  std::vector<std::vector<std::string>> csv_rows;
  for (const RaceRow& row : rows) {
    const double delta =
        100.0 * (row.multi.cost.total() - locked_total) / locked_total;
    const bool is_online = row.label.rfind("online", 0) == 0;
    std::printf("  %-14s %12.2f %12.2f %7d %+7.1f%% %s\n", row.label.c_str(),
                row.multi.cost.total(), row.multi.cost.migration,
                row.multi.total_moves, delta,
                is_online ? "online (no lookahead)"
                          : (row.proven_optimal ? "exact, proven optimal"
                                                : "exact, budget-limited"));
    csv_rows.push_back({row.label, format_double(row.multi.cost.total(), 2),
                        format_double(row.multi.cost.migration, 2),
                        std::to_string(row.multi.total_moves),
                        format_double(delta, 2)});
  }
  bench::export_csv("fig_multiperiod_" + instance.name,
                    {"algorithm", "horizon total", "migration", "moves",
                     "vs locked %"},
                    csv_rows);
  std::printf("\n");
}

void run_migration_sweep(const ConsolidationInstance& instance) {
  const CostModel model(instance);
  std::printf("migration-rate sweep (time-expanded): moves fall as moving "
              "gets pricier\n");
  std::printf("  %-10s %12s %12s %7s\n", "rate", "horizon total", "migration",
              "moves");
  std::vector<std::vector<std::string>> csv_rows;
  for (const Money rate : {0.0, 0.5, 2.0}) {
    const MultiPeriodPlan multi = solve(model, make_curve(rate), false);
    std::printf("  $%-9.2f %12.2f %12.2f %7d\n", rate, multi.cost.total(),
                multi.cost.migration, multi.total_moves);
    csv_rows.push_back({format_double(rate, 2),
                        format_double(multi.cost.total(), 2),
                        format_double(multi.cost.migration, 2),
                        std::to_string(multi.total_moves)});
  }
  bench::export_csv("fig_multiperiod_sweep",
                    {"migration rate", "horizon total", "migration", "moves"},
                    csv_rows);
  std::printf("\n");
}

}  // namespace
}  // namespace etransform

int main() {
  using namespace etransform;
  set_log_level(LogLevel::kError);
  bench::banner(
      "Fig. multiperiod — time-expanded consolidation vs static and online",
      "weighted horizon totals on the right-sizing estate; lower is better;"
      "\nonline rows play the horizon one period at a time (no lookahead)");
  const ConsolidationInstance estate = make_rightsizing_estate({});
  run_race(estate, 0.5);
  run_migration_sweep(estate);
  return 0;
}
