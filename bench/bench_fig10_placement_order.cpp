// E11 — Fig. 10: placement order under the space/WAN tradeoff.
//
// Same VPN scenario as Fig. 9 (capacity 100 per site). The number of
// application groups sweeps 50..700; for each count we plan and report how
// many sites are used and in which order locations fill up.
//
// Reproduction target: eTransform fills the location with the globally
// cheapest total cost first, then spills to the next-cheapest, so the
// "sites used" staircase rises by one every 100 groups and the fill order
// matches the Fig. 9 total-cost ranking.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/logging.h"
#include "common/table.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"

namespace etransform {
namespace {

void run() {
  const std::vector<std::string> header = {"app groups", "sites used",
                                           "locations filled (order)"};
  TextTable table(header);
  std::vector<std::vector<std::string>> rows;
  for (int groups = 50; groups <= 700; groups += 50) {
    VpnTradeoffSpec spec;
    spec.num_groups = groups;
    const auto instance = make_vpn_tradeoff(spec);
    const CostModel model(instance);
    PlannerOptions options;
    // One-server groups make the assignment polytope integral; the exact
    // engine solves these at the LP root. Above the var gate kAuto flips to
    // the (equally exact here) heuristic.
    const EtransformPlanner planner(options);
    SolveContext ctx;
    const PlannerReport report = planner.plan(PlanInput(model), ctx);

    std::map<int, int> groups_per_site;
    for (const int j : report.plan.primary) groups_per_site[j] += 1;
    // Order by occupancy (fullest first) to show the fill sequence.
    std::vector<std::pair<int, int>> by_occupancy(groups_per_site.begin(),
                                                  groups_per_site.end());
    std::sort(by_occupancy.begin(), by_occupancy.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::string order;
    for (const auto& [site, count] : by_occupancy) {
      if (!order.empty()) order += ", ";
      order += instance.sites[static_cast<std::size_t>(site)].name + "(" +
               std::to_string(count) + ")";
    }
    std::vector<std::string> row = {std::to_string(groups),
                                    std::to_string(report.plan.sites_used()),
                                    order};
    table.add_row(row);
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  bench::export_csv("fig10_placement_order", header, rows);
}

}  // namespace
}  // namespace etransform

int main() {
  using namespace etransform;
  set_log_level(LogLevel::kError);
  bench::banner("Fig. 10 — placement by eTransform",
                "sites used vs number of app groups; fill order follows the "
                "cheapest-total ranking");
  run();
  return 0;
}
