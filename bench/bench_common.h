// Shared helpers for the reproduction harnesses.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/csv.h"

namespace etransform::bench {

/// Prints a section banner naming the paper artifact being regenerated.
inline void banner(const std::string& title, const std::string& detail) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), detail.c_str());
}

/// Writes figure data under bench_data/<name>.csv (for replotting) and says
/// so on stdout. Failures to create the directory are reported, not fatal —
/// the printed tables are the primary artifact.
inline void export_csv(const std::string& name,
                       const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::error_code ec;
  std::filesystem::create_directories("bench_data", ec);
  if (ec) {
    std::fprintf(stderr, "bench_data/: %s\n", ec.message().c_str());
    return;
  }
  const std::string path = "bench_data/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  CsvWriter writer(out);
  writer.write_row(header);
  for (const auto& row : rows) writer.write_row(row);
  std::printf("[data: %s]\n", path.c_str());
}

}  // namespace etransform::bench
