// E9 — Fig. 8: influence of the DR server cost.
//
// Same line scenario as Fig. 7 with zero latency penalty and DR planning on;
// the backup-server price zeta sweeps $1..$10,000 (log scale). Prints the
// two series of the paper's figure: number of data centers used for
// primaries, and total DR servers purchased.
//
// Reproduction target: cheap backup servers -> consolidate primaries into
// the one cheapest site (2 sites total incl. the backup pool) but buy many
// DR servers; expensive backup servers -> spread primaries over many sites
// so one shared pool covers any single failure, buying far fewer DR servers.
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/table.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"

namespace etransform {
namespace {

void run_sweep() {
  const std::vector<std::string> header = {"DR server cost ($)",
                                           "data centers used", "DR servers",
                                           "total cost ($)"};
  TextTable table(header);
  std::vector<std::vector<std::string>> rows;
  for (const double zeta : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    LatencyLineSpec spec;
    spec.penalty_per_user = 0.0;
    spec.dr_server_cost = zeta;
    // A steep space gradient creates the low-cost consolidation regime:
    // backup servers pay monthly space too, so spreading always saves
    // *some* backup space — only when moving primaries up the gradient
    // costs more than those savings does the planner consolidate, and
    // rising zeta then flips it toward spreading (the paper's crossover).
    spec.space_step = 20.0;
    const auto instance = make_latency_line(spec);
    const CostModel model(instance);
    PlannerOptions options;
    options.enable_dr = true;
    // 190 groups x 10 sites: beyond the joint J_abc gate; the heuristic
    // engine optimizes the exact shared-sizing objective directly.
    options.engine = PlannerOptions::Engine::kHeuristic;
    const EtransformPlanner planner(options);
    SolveContext ctx;
    const PlannerReport report = planner.plan(PlanInput(model), ctx);
    std::vector<std::string> row = {
        format_double(zeta, 0), std::to_string(report.plan.sites_used()),
        std::to_string(report.plan.total_backup_servers()),
        format_double(report.plan.cost.total(), 0)};
    table.add_row(row);
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  bench::export_csv("fig8_dr_server_cost", header, rows);
}

}  // namespace
}  // namespace etransform

int main() {
  using namespace etransform;
  set_log_level(LogLevel::kError);
  bench::banner("Fig. 8 — influence of the DR server cost",
                "sites used and DR servers bought vs backup-server price "
                "(log sweep)");
  run_sweep();
  return 0;
}
