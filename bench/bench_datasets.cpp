// E1 — Table II / Figs. 2-3: dataset summary statistics.
//
// Regenerates the paper's dataset description tables from the synthetic
// generators: application group / server / data-center counts per dataset
// must match Table II exactly; the per-dataset detail mirrors Fig. 3.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "datagen/generators.h"
#include "report/report.h"

int main() {
  using namespace etransform;
  bench::banner("Table II — dataset sizes",
                "as-is DCs / target DCs / servers / app groups per dataset");

  TextTable table({"dataset", "as-is data centers", "target data centers",
                   "servers", "app groups"});
  for (const auto& instance :
       {make_enterprise1(), make_florida(), make_federal()}) {
    table.add_row({instance.name,
                   std::to_string(instance.as_is_centers.size()),
                   std::to_string(instance.num_sites()),
                   std::to_string(instance.total_servers()),
                   std::to_string(instance.num_groups())});
  }
  std::printf("%s\n", table.render().c_str());

  bench::banner("Fig. 3 — enterprise1 detail",
                "summary statistics of the enterprise1 estate");
  const auto enterprise1 = make_enterprise1();
  std::printf("%s\n", render_instance_summary(enterprise1).c_str());

  bench::banner("Fig. 2 — geographic spread (enterprise1)",
                "as-is data centers / servers / users per region, as the "
                "paper's <X, Y, Z> map annotations");
  {
    const int regions = enterprise1.num_locations();
    std::vector<int> centers(static_cast<std::size_t>(regions), 0);
    std::vector<long long> servers(static_cast<std::size_t>(regions), 0);
    std::vector<double> users(static_cast<std::size_t>(regions), 0.0);
    // A center belongs to the region it is closest to.
    const auto region_of = [&](const GeoPoint& p) {
      int best = 0;
      for (int r = 1; r < regions; ++r) {
        if (distance(p, enterprise1.locations[static_cast<std::size_t>(r)]
                            .position) <
            distance(p, enterprise1.locations[static_cast<std::size_t>(best)]
                            .position)) {
          best = r;
        }
      }
      return best;
    };
    std::vector<int> center_region;
    for (const auto& center : enterprise1.as_is_centers) {
      const int r = region_of(center.position);
      center_region.push_back(r);
      centers[static_cast<std::size_t>(r)] += 1;
    }
    for (int i = 0; i < enterprise1.num_groups(); ++i) {
      const auto& group = enterprise1.groups[static_cast<std::size_t>(i)];
      const int r = center_region[static_cast<std::size_t>(
          enterprise1.as_is_placement[static_cast<std::size_t>(i)])];
      servers[static_cast<std::size_t>(r)] += group.servers;
      for (int loc = 0; loc < regions; ++loc) {
        users[static_cast<std::size_t>(loc)] +=
            group.users_per_location[static_cast<std::size_t>(loc)];
      }
    }
    TextTable regions_table({"region", "data centers", "servers", "users"});
    for (int r = 0; r < regions; ++r) {
      regions_table.add_row(
          {enterprise1.locations[static_cast<std::size_t>(r)].name,
           std::to_string(centers[static_cast<std::size_t>(r)]),
           std::to_string(servers[static_cast<std::size_t>(r)]),
           std::to_string(static_cast<long long>(
               users[static_cast<std::size_t>(r)]))});
    }
    std::printf("%s\n", regions_table.render().c_str());
  }
  return 0;
}
