// SolveFarm harness: measures what the concurrent solve service buys on this
// machine.
//
//  1. Scenario-sweep throughput — the same ScenarioSet (an omega sweep plus a
//     latency-penalty sweep over one random estate) run on a 1-thread and an
//     8-thread SolveService. Reports per-run wall times and the speedup. On a
//     single-core container the speedup is ~1x by construction; the harness
//     measures and says so rather than pretending. It also verifies the two
//     rendered reports are byte-identical (the determinism contract).
//
//  2. Portfolio race — exact vs. heuristic on one instance; prints the
//     winner, both legs' terminal states, and confirms the loser unwound via
//     cancellation (or, single-threaded, never started).
//
//  3. Telemetry overhead — the same 8-thread sweep with and without a trace
//     recorder + metrics registry attached; prints the recorded span volume
//     and the wall-clock overhead of running fully instrumented, and writes
//     the run artifacts (trace.json / metrics.prom) for inspection.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "datagen/generators.h"
#include "service/scenario_set.h"
#include "service/solve_farm.h"
#include "telemetry/artifacts.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace etransform::bench {
namespace {

ScenarioSet build_sweep(std::uint64_t seed) {
  Rng rng(seed);
  // Sized so every scenario (including the joint-DR solves) runs to proven
  // optimality: time-limited solves would make per-scenario work depend on
  // wall-clock contention, poisoning both the speedup measurement and the
  // cross-thread-count determinism check.
  ScenarioSet set(make_random_instance(rng, 14, 4, 3));
  set.add_omega_sweep({1.0, 0.9, 0.8, 0.7, 0.6, 0.5});
  set.add_latency_penalty_sweep({0.0, 25.0, 50.0, 100.0, 200.0});
  // The joint-DR MILP at this size outruns any sane bench budget; sweep the
  // DR price on the (deterministic) heuristic engine instead.
  PlannerOptions dr_options;
  dr_options.engine = PlannerOptions::Engine::kHeuristic;
  set.add_dr_cost_sweep({250.0, 500.0, 1000.0}, dr_options);
  return set;
}

double run_sweep_ms(const ScenarioSet& set, int threads, std::string* report) {
  SolveService service(threads);
  Stopwatch timer;
  const auto results = run_scenarios(set, service);
  const double elapsed = timer.elapsed_ms();
  *report = render_scenario_results(results);
  return elapsed;
}

void sweep_benchmark() {
  banner("SolveFarm scenario sweep",
         "14 scenarios (omega / latency-penalty / DR-cost sweeps) over one "
         "14-group estate,\nsolved on a 1-thread vs. an 8-thread "
         "SolveService.");
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n", cores);

  const ScenarioSet set = build_sweep(2024);
  std::string report1;
  std::string report8;
  // Warm-up pass so first-touch allocation noise lands outside the timings.
  (void)run_sweep_ms(set, 1, &report1);
  const double ms1 = run_sweep_ms(set, 1, &report1);
  const double ms8 = run_sweep_ms(set, 8, &report8);
  const double speedup = ms8 > 0.0 ? ms1 / ms8 : 0.0;

  std::printf("1 thread : %9.1f ms\n", ms1);
  std::printf("8 threads: %9.1f ms\n", ms8);
  std::printf("speedup  : %9.2fx\n", speedup);
  if (cores <= 1) {
    std::printf(
        "(single-core machine: parallel speedup is not observable here; "
        "rerun on a\n multi-core host to see the farm scale)\n");
  }
  std::printf("reports byte-identical across thread counts: %s\n",
              report1 == report8 ? "yes" : "NO — DETERMINISM BUG");

  export_csv("solve_farm_sweep", {"threads", "wall_ms", "speedup"},
             {{"1", std::to_string(ms1), "1.0"},
              {"8", std::to_string(ms8), std::to_string(speedup)}});

  std::printf("\n%s\n", report1.c_str());
}

void race_benchmark() {
  banner("Portfolio race",
         "Exact (presolve -> branch-and-bound) vs. heuristic on the same "
         "instance;\nthe first finisher cancels the other.");
  Rng rng(7);
  const auto instance = make_random_instance(rng, 32, 6, 4);
  SolveService service(0);  // hardware concurrency
  const RaceOutcome outcome =
      race_portfolio(service, instance, PlannerOptions());
  std::printf("winner engine : %s\n", outcome.winner_engine.c_str());
  std::printf("first finisher: %s\n", outcome.first_finisher.c_str());
  std::printf("exact leg     : %-9s %8.1f ms\n", to_string(outcome.exact_state),
              outcome.exact_ms);
  std::printf("heuristic leg : %-9s %8.1f ms\n",
              to_string(outcome.heuristic_state), outcome.heuristic_ms);
  std::printf("loser cancelled: %s\n", outcome.loser_cancelled ? "yes" : "no");
  std::printf("best plan cost : $%.0f/mo\n", outcome.best.plan.cost.total());

  export_csv("solve_farm_race",
             {"winner", "exact_state", "exact_ms", "heuristic_state",
              "heuristic_ms", "loser_cancelled"},
             {{outcome.winner_engine, to_string(outcome.exact_state),
               std::to_string(outcome.exact_ms),
               to_string(outcome.heuristic_state),
               std::to_string(outcome.heuristic_ms),
               outcome.loser_cancelled ? "yes" : "no"}});
}

void telemetry_benchmark() {
  banner("Telemetry overhead",
         "The scenario sweep on an 8-thread farm, plain vs. fully "
         "instrumented\n(trace recorder + metrics registry attached).");
  const ScenarioSet set = build_sweep(2024);
  std::string report_plain;
  std::string report_traced;

  // Warm-up, then the plain run.
  (void)run_sweep_ms(set, 8, &report_plain);
  const double plain_ms = run_sweep_ms(set, 8, &report_plain);

  // Instrumented run. Recorder/registry must outlive the service (its
  // workers record until drained), hence the declaration order. Default ring
  // capacity: big rings shift the measurement from recording cost to
  // first-touch page faults.
  telemetry::TraceRecorder recorder;
  telemetry::MetricsRegistry registry;
  double traced_ms = 0.0;
  {
    SolveService service(8);
    service.attach_telemetry(&recorder, &registry);
    Stopwatch timer;
    const auto results = run_scenarios(set, service);
    traced_ms = timer.elapsed_ms();
    report_traced = render_scenario_results(results);
  }

  const double overhead_pct =
      plain_ms > 0.0 ? (traced_ms - plain_ms) / plain_ms * 100.0 : 0.0;
  std::printf("plain      : %9.1f ms\n", plain_ms);
  std::printf("instrumented: %8.1f ms  (%+.1f%%)\n", traced_ms, overhead_pct);
  std::printf("spans recorded: %zu (dropped %llu) across %d threads\n",
              recorder.recorded(),
              static_cast<unsigned long long>(recorder.dropped()),
              recorder.thread_count());
  std::printf("reports identical plain vs. instrumented: %s\n",
              report_plain == report_traced ? "yes" : "NO — TELEMETRY "
                                                      "PERTURBS RESULTS");

  telemetry::ArtifactPaths paths;
  std::string error;
  if (telemetry::write_run_artifacts("bench_results/telemetry_run", &recorder,
                                     &registry, /*stats_json=*/"", &paths,
                                     &error)) {
    std::printf("artifacts: %s, %s\n", paths.trace_json.c_str(),
                paths.metrics_prom.c_str());
  } else {
    std::printf("artifact write failed: %s\n", error.c_str());
  }

  export_csv("telemetry_overhead",
             {"mode", "wall_ms", "spans", "dropped"},
             {{"plain", std::to_string(plain_ms), "0", "0"},
              {"instrumented", std::to_string(traced_ms),
               std::to_string(recorder.recorded()),
               std::to_string(recorder.dropped())}});
}

}  // namespace
}  // namespace etransform::bench

int main() {
  etransform::bench::sweep_benchmark();
  etransform::bench::race_benchmark();
  etransform::bench::telemetry_benchmark();
  return 0;
}
