// E10 — Fig. 9: tradeoff between space cost and WAN (VPN) cost.
//
// Ten sites with capacity 100; all users at the far end; dedicated VPN
// links. Space $/server rises geometrically toward the users while the VPN
// lease price falls. For each site this prints the space, WAN, and total
// cost of hosting one site's worth (100 servers) of application groups —
// the paper's per-location bars.
//
// Reproduction target: space and WAN cross; the total is U-shaped with an
// interior minimum, and the cheapest location is roughly 7x cheaper than the
// most expensive one.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/table.h"
#include "cost/cost_model.h"
#include "datagen/generators.h"

namespace etransform {
namespace {

void run() {
  VpnTradeoffSpec spec;
  const auto instance = make_vpn_tradeoff(spec);
  const CostModel model(instance);

  // Cost of hosting one site's worth of groups (site_capacity groups of one
  // server each) at each location.
  const int groups_per_site = spec.site_capacity / spec.servers_per_group;
  const std::vector<std::string> header = {"data center", "space cost ($)",
                                           "wan cost ($)", "total cost ($)"};
  TextTable table(header);
  std::vector<std::vector<std::string>> rows;
  double cheapest = 0.0;
  double costliest = 0.0;
  for (int j = 0; j < instance.num_sites(); ++j) {
    const double space =
        model.site_cost(j, spec.site_capacity, 0.0).space;
    double wan = 0.0;
    for (int g = 0; g < groups_per_site; ++g) {
      wan += model.wan_cost(g, j);
    }
    const double total = space + wan;
    if (j == 0) {
      cheapest = costliest = total;
    } else {
      cheapest = std::min(cheapest, total);
      costliest = std::max(costliest, total);
    }
    std::vector<std::string> row = {
        instance.sites[static_cast<std::size_t>(j)].name,
        format_double(space, 0), format_double(wan, 0),
        format_double(total, 0)};
    table.add_row(row);
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  bench::export_csv("fig9_space_wan_tradeoff", header, rows);
  std::printf("cheapest vs costliest location: %.1fx\n\n",
              costliest / cheapest);
}

}  // namespace
}  // namespace etransform

int main() {
  using namespace etransform;
  set_log_level(LogLevel::kError);
  bench::banner("Fig. 9 — space cost vs WAN cost tradeoff",
                "per-site space / WAN / total cost of hosting 100 servers "
                "(dedicated VPN links)");
  run();
  return 0;
}
