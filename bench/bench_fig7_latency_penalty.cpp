// E8 — Fig. 7(a-c): influence of the latency penalty.
//
// Ten sites on a line (latency and space cost rising away from location 0),
// users split between locations 0 and 9, latency penalty swept $0..$120 per
// user across five user distributions. Prints the three series the paper
// plots: total cost, space cost, and mean user latency.
//
// Reproduction target: at $0 penalty every distribution sits at the cheapest
// site; as the penalty grows, total cost rises for mixed distributions,
// space cost climbs when users concentrate at the expensive end (the planner
// moves next to them), and mean latency falls monotonically. With all users
// at location 0 the curves stay flat.
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/table.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"

namespace etransform {
namespace {

struct Series {
  double fraction_near;
  const char* label;
};

void run_sweep() {
  const Series series[] = {
      {0.0, "all users in location 9"},
      {0.25, "25% users in location 0"},
      {0.5, "users split evenly 0/9"},
      {0.75, "75% users in location 0"},
      {1.0, "all users in location 0"},
  };
  const double penalties[] = {0, 20, 40, 60, 80, 100, 120};

  const std::vector<std::string> header = {"penalty ($/user)", "all@9",
                                           "25%@0", "50/50", "75%@0",
                                           "all@0"};
  TextTable total(header);
  TextTable space(header);
  TextTable latency(header);
  std::vector<std::vector<std::string>> total_rows;
  std::vector<std::vector<std::string>> space_rows;
  std::vector<std::vector<std::string>> latency_rows;

  for (const double penalty : penalties) {
    std::vector<std::string> total_row = {format_double(penalty, 0)};
    std::vector<std::string> space_row = total_row;
    std::vector<std::string> latency_row = total_row;
    for (const Series& s : series) {
      LatencyLineSpec spec;
      spec.penalty_per_user = penalty;
      spec.fraction_users_near = s.fraction_near;
      const auto instance = make_latency_line(spec);
      const CostModel model(instance);
      const EtransformPlanner planner;
      SolveContext ctx;
      const PlannerReport report = planner.plan(PlanInput(model), ctx);

      double user_weighted_latency = 0.0;
      double users = 0.0;
      for (int i = 0; i < instance.num_groups(); ++i) {
        const auto& group = instance.groups[static_cast<std::size_t>(i)];
        user_weighted_latency +=
            group.total_users() *
            model.average_latency(i,
                                  report.plan.primary[
                                      static_cast<std::size_t>(i)]);
        users += group.total_users();
      }
      total_row.push_back(format_double(report.plan.cost.total(), 0));
      space_row.push_back(format_double(report.plan.cost.space, 0));
      latency_row.push_back(
          format_double(users > 0 ? user_weighted_latency / users : 0.0, 1));
    }
    total.add_row(total_row);
    space.add_row(space_row);
    latency.add_row(latency_row);
    total_rows.push_back(std::move(total_row));
    space_rows.push_back(std::move(space_row));
    latency_rows.push_back(std::move(latency_row));
  }

  std::printf("(a) total cost ($)\n%s\n", total.render().c_str());
  std::printf("(b) space cost ($)\n%s\n", space.render().c_str());
  std::printf("(c) average latency (ms)\n%s\n", latency.render().c_str());
  bench::export_csv("fig7a_total_cost", header, total_rows);
  bench::export_csv("fig7b_space_cost", header, space_rows);
  bench::export_csv("fig7c_avg_latency", header, latency_rows);
}

}  // namespace
}  // namespace etransform

int main() {
  using namespace etransform;
  set_log_level(LogLevel::kError);
  bench::banner("Fig. 7 — influence of the latency penalty",
                "total cost / space cost / mean latency vs penalty, for five "
                "user distributions");
  run_sweep();
  return 0;
}
