// etransformd load harness: boots the daemon in-process on an ephemeral
// port and drives open-loop HTTP traffic against it, reporting into
// BENCH_server.json. Three phases:
//
//  1. Open-loop throughput — submissions arrive on a fixed schedule
//     (independent of completions, so queueing and backpressure are
//     exercised honestly): a configurable fraction are repeats of pre-warmed
//     instances (cache hits), a configurable fraction are replan deltas
//     against an exact base job, and the rest are fresh heuristic solves.
//     Reports sustained jobs/sec, 429 rejections, and end-to-end latency
//     percentiles split by hit/miss.
//
//  2. Cache economics — one cold exact solve vs. repeated identical
//     submissions served from the instance cache; reports the speedup
//     (the ISSUE floor is 10x; locally it is orders of magnitude).
//
//  3. Incremental replan — a pin delta submitted via POST /v1/replan
//     (warm-started from the base job's root basis) vs. a fresh solve of
//     the identically-modified instance; reports lp_iters for both.
//
//   bench_server_load [--jobs N] [--rate R] [--hit-ratio F]
//                     [--delta-fraction F] [--workers N] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/error.h"
#include "common/json.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "datagen/generators.h"
#include "model/instance_io.h"
#include "server/daemon.h"
#include "server/http.h"

namespace etransform::bench {
namespace {

struct LoadOptions {
  int jobs = 160;            // total arrivals in the throughput phase
  double rate = 80.0;        // arrivals per second (open loop)
  double hit_ratio = 0.4;    // fraction resubmitting a pre-warmed instance
  double delta_fraction = 0.1;  // fraction submitted as replan deltas
  int workers = 8;
  std::string out = "BENCH_server.json";
};

json::Value get_json(int port, const std::string& method,
                     const std::string& target, const std::string& body) {
  server::ClientResponse response;
  std::string error;
  if (!server::http_request(port, method, target, body, &response, &error)) {
    throw InvalidInputError("http_request: " + error);
  }
  json::Value doc;
  if (!json::parse(response.body, doc, &error)) {
    throw InvalidInputError("bad JSON from " + target + ": " + error);
  }
  return doc;
}

std::string plan_body(const ConsolidationInstance& instance,
                      const std::string& engine, bool cache) {
  json::Value body = json::Value::object();
  body.set("instance", json::Value::string(write_instance(instance)));
  json::Value options = json::Value::object();
  options.set("engine", json::Value::string(engine));
  body.set("options", std::move(options));
  if (!cache) body.set("cache", json::Value::boolean(false));
  return body.dump();
}

/// Submits and polls to a terminal state; returns the final status document.
json::Value solve_and_wait(int port, const std::string& target,
                           const std::string& body) {
  json::Value submitted = get_json(port, "POST", target, body);
  const json::Value* state = submitted.get("state");
  if (state != nullptr && state->str == "done") return submitted;  // cache hit
  const json::Value* id = submitted.get("job");
  if (id == nullptr) {
    throw InvalidInputError("submission rejected: " + submitted.dump());
  }
  const std::string job_target =
      "/v1/jobs/" + std::to_string(static_cast<long long>(id->num));
  while (true) {
    json::Value doc = get_json(port, "GET", job_target, "");
    const std::string s = doc.get("state")->str;
    if (s == "done" || s == "cancelled" || s == "failed") return doc;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

double result_number(const json::Value& status, const char* field) {
  const json::Value* result = status.get("result");
  if (result == nullptr || result->get(field) == nullptr) return -1.0;
  return result->get(field)->num;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

json::Value latency_summary(const std::vector<double>& samples) {
  json::Value out = json::Value::object();
  out.set("count", json::Value::number(static_cast<double>(samples.size())));
  out.set("p50_ms", json::Value::number(percentile(samples, 0.50)));
  out.set("p90_ms", json::Value::number(percentile(samples, 0.90)));
  out.set("p99_ms", json::Value::number(percentile(samples, 0.99)));
  return out;
}

/// One in-flight arrival: submit time plus the job id to poll (or a
/// synchronous terminal latency for cache hits and rejections).
struct Arrival {
  long long job = -1;
  bool hit = false;        // submitted against a pre-warmed instance
  bool replan = false;
  bool rejected = false;   // 429
  double submit_ms = 0.0;  // since phase start
  double done_ms = -1.0;   // since phase start; < 0 while outstanding
  double service_ms = -1.0;  // server-reported worker time (solve_ms)
};

json::Value throughput_phase(int port, const LoadOptions& load) {
  banner("open-loop throughput",
         "fixed-rate arrivals against an in-process etransformd; hits "
         "resubmit pre-warmed\ninstances, deltas hit POST /v1/replan, the "
         "rest are fresh heuristic solves.");

  // Pre-warm a pool of instances (these become the cache-hit targets) and
  // one exact base job for the replan arrivals.
  Rng rng(2027);
  std::vector<ConsolidationInstance> pool;
  for (int i = 0; i < 6; ++i) {
    pool.push_back(make_random_instance(rng, 8, 3, 2));
    (void)solve_and_wait(port, "/v1/plan", plan_body(pool.back(), "heuristic",
                                                     /*cache=*/true));
  }
  const ConsolidationInstance base_instance =
      make_random_instance(rng, 24, 6, 3);
  const json::Value base_done = solve_and_wait(
      port, "/v1/plan", plan_body(base_instance, "exact", /*cache=*/true));
  const long long base_job =
      static_cast<long long>(base_done.get("job")->num);

  std::vector<Arrival> arrivals(static_cast<std::size_t>(load.jobs));
  const Stopwatch clock;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t fresh_seed = 777;
  for (int i = 0; i < load.jobs; ++i) {
    // Open loop: arrival i fires at i/rate seconds, late or not.
    const auto due =
        start + std::chrono::microseconds(
                    static_cast<long long>(1e6 * static_cast<double>(i) /
                                           load.rate));
    std::this_thread::sleep_until(due);
    Arrival& a = arrivals[static_cast<std::size_t>(i)];
    const double roll = rng.uniform();
    std::string target = "/v1/plan";
    std::string body;
    if (roll < load.delta_fraction) {
      a.replan = true;
      json::Value req = json::Value::object();
      req.set("base_job",
              json::Value::number(static_cast<double>(base_job)));
      json::Value delta = json::Value::object();
      json::Value pins = json::Value::array();
      json::Value pin = json::Value::object();
      pin.set("group", json::Value::number(
                           static_cast<double>(i % base_instance.num_groups())));
      pin.set("site", json::Value::number(
                          static_cast<double>(i % base_instance.num_sites())));
      pins.push(std::move(pin));
      delta.set("pin", std::move(pins));
      req.set("delta", std::move(delta));
      target = "/v1/replan";
      body = req.dump();
    } else if (roll < load.delta_fraction + load.hit_ratio) {
      a.hit = true;
      body = plan_body(
          pool[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(pool.size()) - 1))],
          "heuristic", /*cache=*/true);
    } else {
      Rng fresh(fresh_seed++);
      body = plan_body(make_random_instance(fresh, 8, 3, 2), "heuristic",
                       /*cache=*/true);
    }
    a.submit_ms = clock.elapsed_ms();
    server::ClientResponse response;
    std::string error;
    if (!server::http_request(port, "POST", target, body, &response,
                              &error)) {
      throw InvalidInputError("http_request: " + error);
    }
    if (response.status == 429) {
      a.rejected = true;
      continue;
    }
    json::Value doc;
    if (!json::parse(response.body, doc, nullptr) ||
        doc.get("job") == nullptr) {
      throw InvalidInputError("malformed submit response: " + response.body);
    }
    a.job = static_cast<long long>(doc.get("job")->num);
    const json::Value* state = doc.get("state");
    if (state != nullptr && state->str == "done") {
      a.done_ms = clock.elapsed_ms();  // cache hit: terminal at submission
    }
  }
  const double dispatch_ms = clock.elapsed_ms();

  // Drain: poll the outstanding jobs to terminal states.
  for (Arrival& a : arrivals) {
    if (a.job < 0 || a.done_ms >= 0.0) continue;
    const std::string target = "/v1/jobs/" + std::to_string(a.job);
    while (true) {
      const json::Value doc = get_json(port, "GET", target, "");
      const std::string s = doc.get("state")->str;
      if (s == "done" || s == "cancelled" || s == "failed") {
        if (doc.get("solve_ms") != nullptr) {
          a.service_ms = doc.get("solve_ms")->num;
        }
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    a.done_ms = clock.elapsed_ms();
  }
  const double total_ms = clock.elapsed_ms();

  int rejected = 0;
  int completed = 0;
  double last_done = 0.0;
  std::vector<double> hit_latency;   // client round trip: hits are
                                     // terminal in the POST response
  std::vector<double> miss_service;  // server-side worker time; the drain
                                     // loop's observation time would
                                     // otherwise pollute end-to-end numbers
  for (const Arrival& a : arrivals) {
    if (a.rejected) {
      ++rejected;
      continue;
    }
    ++completed;
    last_done = std::max(last_done, a.done_ms);
    if (a.hit) {
      hit_latency.push_back(a.done_ms - a.submit_ms);
    } else if (a.service_ms >= 0.0) {
      miss_service.push_back(a.service_ms);
    }
  }
  const double jobs_per_sec =
      last_done > 0.0 ? 1e3 * static_cast<double>(completed) / last_done : 0.0;

  std::printf("arrivals: %d at %.0f/s (hit %.0f%%, delta %.0f%%)\n",
              load.jobs, load.rate, 100.0 * load.hit_ratio,
              100.0 * load.delta_fraction);
  std::printf("completed: %d   rejected(429): %d\n", completed, rejected);
  std::printf("dispatch window: %.0f ms   drained at: %.0f ms\n", dispatch_ms,
              total_ms);
  std::printf("sustained: %.1f jobs/sec\n", jobs_per_sec);
  std::printf("hit round trip p50/p90/p99 (ms):  %.2f/%.2f/%.2f\n",
              percentile(hit_latency, 0.5), percentile(hit_latency, 0.9),
              percentile(hit_latency, 0.99));
  std::printf("miss worker time p50/p90/p99 (ms): %.2f/%.2f/%.2f\n",
              percentile(miss_service, 0.5), percentile(miss_service, 0.9),
              percentile(miss_service, 0.99));

  json::Value out = json::Value::object();
  out.set("arrival_rate_per_sec", json::Value::number(load.rate));
  out.set("arrivals", json::Value::number(static_cast<double>(load.jobs)));
  out.set("hit_ratio", json::Value::number(load.hit_ratio));
  out.set("delta_fraction", json::Value::number(load.delta_fraction));
  out.set("completed", json::Value::number(static_cast<double>(completed)));
  out.set("rejected_429", json::Value::number(static_cast<double>(rejected)));
  out.set("sustained_jobs_per_sec", json::Value::number(jobs_per_sec));
  out.set("cache_hit_round_trip", latency_summary(hit_latency));
  out.set("miss_worker_time", latency_summary(miss_service));
  return out;
}

json::Value cache_phase(int port) {
  banner("cache economics",
         "one cold exact solve vs. repeated identical submissions served "
         "from the\ninstance cache (same canonical text + options "
         "fingerprint).");
  Rng rng(4242);
  // Large enough that the exact solve dominates the HTTP round trip (a
  // ~120 ms proven-optimal MILP), so the speedup measures the cache and not
  // transport noise.
  const ConsolidationInstance instance = make_random_instance(rng, 100, 12, 3);
  const std::string body = plan_body(instance, "exact", /*cache=*/true);

  const Stopwatch cold_watch;
  const json::Value cold = solve_and_wait(port, "/v1/plan", body);
  const double cold_ms = cold_watch.elapsed_ms();
  if (cold.get("state")->str != "done") {
    throw InvalidInputError("cold solve did not finish: " + cold.dump());
  }

  std::vector<double> hit_ms;
  for (int i = 0; i < 20; ++i) {
    const Stopwatch watch;
    const json::Value hit = solve_and_wait(port, "/v1/plan", body);
    hit_ms.push_back(watch.elapsed_ms());
    if (hit.get("cache_hit") == nullptr || !hit.get("cache_hit")->b) {
      throw InvalidInputError("expected a cache hit: " + hit.dump());
    }
  }
  const double hit_p50 = percentile(hit_ms, 0.5);
  const double speedup = hit_p50 > 0.0 ? cold_ms / hit_p50 : 0.0;
  std::printf("cold exact solve: %.2f ms (lp_iters %.0f)\n", cold_ms,
              result_number(cold, "lp_iters"));
  std::printf("cache hit p50:    %.3f ms over %zu requests\n", hit_p50,
              hit_ms.size());
  std::printf("speedup:          %.0fx %s\n", speedup,
              speedup >= 10.0 ? "(>= 10x floor)" : "(below 10x floor!)");

  json::Value out = json::Value::object();
  out.set("cold_ms", json::Value::number(cold_ms));
  out.set("hit_p50_ms", json::Value::number(hit_p50));
  out.set("hit_p99_ms", json::Value::number(percentile(hit_ms, 0.99)));
  out.set("speedup", json::Value::number(speedup));
  out.set("meets_10x_floor", json::Value::boolean(speedup >= 10.0));
  return out;
}

json::Value replan_phase(int port) {
  banner("incremental replan",
         "POST /v1/replan with a one-pin delta (warm dual-simplex restart "
         "from the base\njob's root basis) vs. a fresh exact solve of the "
         "identically-modified instance.");
  Rng rng(9090);
  const ConsolidationInstance instance = make_random_instance(rng, 40, 8, 3);
  const json::Value base =
      solve_and_wait(port, "/v1/plan", plan_body(instance, "exact",
                                                 /*cache=*/false));
  const long long base_job = static_cast<long long>(base.get("job")->num);

  json::Value req = json::Value::object();
  req.set("base_job", json::Value::number(static_cast<double>(base_job)));
  json::Value delta = json::Value::object();
  json::Value pins = json::Value::array();
  json::Value pin = json::Value::object();
  pin.set("group", json::Value::number(0));
  pin.set("site", json::Value::number(1));
  pins.push(std::move(pin));
  delta.set("pin", std::move(pins));
  req.set("delta", std::move(delta));
  req.set("cache", json::Value::boolean(false));

  const Stopwatch replan_watch;
  const json::Value replanned =
      solve_and_wait(port, "/v1/replan", req.dump());
  const double replan_ms = replan_watch.elapsed_ms();

  // The control: apply the same pin directly (ScenarioSession::pin_group
  // sets pinned_site) and solve the modified instance from scratch.
  ConsolidationInstance pinned = instance;
  pinned.groups[0].pinned_site = 1;
  const Stopwatch fresh_watch;
  const json::Value fresh = solve_and_wait(
      port, "/v1/plan", plan_body(pinned, "exact", /*cache=*/false));
  const double fresh_ms = fresh_watch.elapsed_ms();

  const double replan_iters = result_number(replanned, "lp_iters");
  const double fresh_iters = result_number(fresh, "lp_iters");
  const bool warm =
      replanned.get("warm_started") != nullptr &&
      replanned.get("warm_started")->b;
  std::printf("base job %lld: lp_iters %.0f\n", base_job,
              result_number(base, "lp_iters"));
  std::printf("replan (warm=%s): lp_iters %.0f in %.1f ms\n",
              warm ? "yes" : "no", replan_iters, replan_ms);
  std::printf("fresh solve:      lp_iters %.0f in %.1f ms\n", fresh_iters,
              fresh_ms);
  std::printf("iter reduction:   %.1f%%\n",
              fresh_iters > 0
                  ? 100.0 * (fresh_iters - replan_iters) / fresh_iters
                  : 0.0);

  json::Value out = json::Value::object();
  out.set("warm_started", json::Value::boolean(warm));
  out.set("replan_lp_iters", json::Value::number(replan_iters));
  out.set("fresh_lp_iters", json::Value::number(fresh_iters));
  out.set("replan_ms", json::Value::number(replan_ms));
  out.set("fresh_ms", json::Value::number(fresh_ms));
  out.set("replan_total_cost",
          json::Value::number(
              replanned.get("result")->get("cost")->get("total")->num));
  out.set("fresh_total_cost",
          json::Value::number(
              fresh.get("result")->get("cost")->get("total")->num));
  return out;
}

int run(const LoadOptions& load) {
  server::DaemonOptions options;
  options.port = 0;
  options.workers = load.workers;
  options.max_queue_depth = 64;
  server::PlannerDaemon daemon(options);
  daemon.start();
  const int port = daemon.port();
  std::printf("etransformd on 127.0.0.1:%d (%d workers)\n", port,
              load.workers);

  json::Value doc = json::Value::object();
  json::Value context = json::Value::object();
  char stamp[64] = {0};
  const std::time_t now = std::time(nullptr);
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%S%z",
                std::localtime(&now));
  context.set("date", json::Value::string(stamp));
  context.set("hardware_concurrency",
              json::Value::number(static_cast<double>(
                  std::thread::hardware_concurrency())));
  context.set("workers",
              json::Value::number(static_cast<double>(load.workers)));
  doc.set("context", std::move(context));
  doc.set("throughput", throughput_phase(port, load));
  doc.set("cache", cache_phase(port));
  doc.set("replan", replan_phase(port));
  daemon.stop();

  std::ofstream out(load.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", load.out.c_str());
    return 1;
  }
  out << doc.dump() << "\n";
  std::printf("\n[data: %s]\n", load.out.c_str());
  return 0;
}

}  // namespace
}  // namespace etransform::bench

int main(int argc, char** argv) {
  etransform::bench::LoadOptions load;
  for (int a = 1; a < argc; ++a) {
    const auto next = [&](double fallback) {
      return a + 1 < argc ? std::atof(argv[++a]) : fallback;
    };
    if (std::strcmp(argv[a], "--jobs") == 0) {
      load.jobs = static_cast<int>(next(load.jobs));
    } else if (std::strcmp(argv[a], "--rate") == 0) {
      load.rate = next(load.rate);
    } else if (std::strcmp(argv[a], "--hit-ratio") == 0) {
      load.hit_ratio = next(load.hit_ratio);
    } else if (std::strcmp(argv[a], "--delta-fraction") == 0) {
      load.delta_fraction = next(load.delta_fraction);
    } else if (std::strcmp(argv[a], "--workers") == 0) {
      load.workers = static_cast<int>(next(load.workers));
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      load.out = argv[++a];
    } else {
      std::fprintf(stderr,
                   "usage: bench_server_load [--jobs N] [--rate R] "
                   "[--hit-ratio F] [--delta-fraction F] [--workers N] "
                   "[--out PATH]\n");
      return 1;
    }
  }
  try {
    return etransform::bench::run(load);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_server_load: %s\n", e.what());
    return 1;
  }
}
