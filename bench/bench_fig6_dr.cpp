// E5-E7 — Fig. 6(a-e): consolidation with integrated disaster recovery.
//
// Bars: AS-IS+DR (current estate plus a mirror backup data center), MANUAL
// (paired backup sites), GREEDY (dedicated backups placed greedily), and
// eTRANSFORM (joint consolidation + DR with shared backup servers).
//
// Reproduction target (shape): eTransform's integrated plan is >= ~25%
// cheaper than AS-IS+DR with ~zero latency violations; manual and greedy can
// end up *more* expensive than AS-IS+DR on the larger datasets (paper:
// +37%/+51%), because dedicated backups forfeit the sharing eTransform
// exploits.
//
// Scale note: the DR MILP's J_abc sharing variables grow as M*N^2; the
// planner uses the joint exact formulation where it fits and the two-stage /
// heuristic path beyond (documented substitution; validated against the
// joint optimum on small instances in tests/planner_test.cpp).
#include <cstdio>

#include "baselines/baselines.h"
#include "bench_common.h"
#include "common/logging.h"
#include "common/table.h"
#include "datagen/generators.h"
#include "planner/etransform_planner.h"
#include "report/report.h"

namespace etransform {
namespace {

void run_dataset(const ConsolidationInstance& instance) {
  const CostModel model(instance);

  std::vector<AlgorithmResult> results;
  int as_is_violations = 0;
  const CostBreakdown as_is_dr = as_is_plus_dr_cost(model, &as_is_violations);
  results.push_back(summarize("AS-IS+DR", as_is_dr, as_is_violations));
  results.push_back(summarize("MANUAL", plan_manual(model, true)));
  results.push_back(summarize("GREEDY", plan_greedy(model, true)));

  PlannerOptions options;
  options.enable_dr = true;
  const EtransformPlanner planner(options);
  SolveContext ctx;
  const PlannerReport report = planner.plan(PlanInput(model), ctx);
  results.push_back(summarize("eTRANSFORM", report.plan));

  std::printf("%s", render_comparison(instance.name, results).c_str());
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& r : results) {
      rows.push_back({r.label, format_double(r.operational_cost, 2),
                      format_double(r.latency_penalty, 2),
                      std::to_string(r.latency_violations)});
    }
    bench::export_csv("fig6_" + instance.name,
                      {"algorithm", "cost", "latency penalty", "violations"},
                      rows);
  }
  std::printf("  eTransform DR: %d backup servers across %d sites (%s)\n\n",
              report.plan.total_backup_servers(), report.plan.sites_used(),
              report.used_exact_solver ? "exact MILP" : "heuristic");
}

}  // namespace
}  // namespace etransform

int main() {
  using namespace etransform;
  set_log_level(LogLevel::kError);
  bench::banner(
      "Fig. 6 — consolidation with disaster recovery",
      "cost + latency penalty per algorithm; reduction vs AS-IS+DR (Fig. 6d);"
      "\nlatency violations (Fig. 6e)");
  run_dataset(make_enterprise1());
  run_dataset(make_florida());
  run_dataset(make_federal());
  return 0;
}
