// Telemetry overhead microbenchmarks (google-benchmark).
//
// Quantifies the two costs the telemetry design promises to keep tiny:
//  * the disabled path — a TraceSpan over a null recorder must be a branch
//    (sub-nanosecond), because every instrumentation point in the solver
//    stack pays it on every solve;
//  * the enabled hot path — recording into the preallocated per-thread ring
//    and bumping atomic instruments, which bound the distortion tracing adds
//    to a traced run;
//  * the live progress channel — a raw SolveProgress::publish (the seqlock
//    write B&B pays every 64 nodes), a reader snapshot of a full ring, and
//    an end-to-end branch-and-bound solve with the ring attached vs.
//    detached, whose delta must stay under the 1% budget DESIGN.md §13
//    promises.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/progress.h"
#include "common/random.h"
#include "milp/branch_and_bound.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace etransform {
namespace {

using telemetry::MetricsRegistry;
using telemetry::TraceRecorder;
using telemetry::TraceSpan;

void BM_TraceSpanDisabled(benchmark::State& state) {
  TraceRecorder* recorder = nullptr;
  benchmark::DoNotOptimize(recorder);
  for (auto _ : state) {
    const TraceSpan span(recorder, "lp", "simplex.factorize");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  TraceRecorder recorder(/*capacity_per_thread=*/1 << 20);
  for (auto _ : state) {
    // Each span publishes two records; drain the ring before it fills so the
    // benchmark measures recording, not dropping.
    if (recorder.recorded() > (1 << 19)) {
      state.PauseTiming();
      recorder.clear();
      state.ResumeTiming();
    }
    const TraceSpan span(&recorder, "lp", "simplex.factorize");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_TraceInstantEnabled(benchmark::State& state) {
  TraceRecorder recorder(/*capacity_per_thread=*/1 << 20);
  std::int64_t i = 0;
  for (auto _ : state) {
    if (recorder.recorded() > (1 << 19)) {
      state.PauseTiming();
      recorder.clear();
      state.ResumeTiming();
    }
    recorder.instant("lp", "presolve.fix", ++i);
  }
}
BENCHMARK(BM_TraceInstantEnabled);

void BM_CounterAdd(benchmark::State& state) {
  MetricsRegistry registry;
  telemetry::Counter& counter =
      registry.counter("etransform_bench_pivots_total");
  for (auto _ : state) {
    counter.add(3.0);
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  MetricsRegistry registry;
  telemetry::Histogram& histogram =
      registry.histogram("etransform_bench_latency_ms");
  double v = 0.1;
  for (auto _ : state) {
    histogram.observe(v);
    v = v < 100000.0 ? v * 1.7 : 0.1;  // sweep across the log buckets
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramObserve);

// ---- live progress channel ------------------------------------------------

// The seqlock write itself: a handful of relaxed stores bracketed by the
// slot sequence. This is the whole cost a publication site pays.
void BM_ProgressPublish(benchmark::State& state) {
  SolveProgress progress(/*capacity=*/256);
  long long nodes = 0;
  double bound = 1000.0;
  for (auto _ : state) {
    progress.publish(/*time_ms=*/static_cast<double>(nodes), ++nodes,
                     /*incumbent=*/500.0, /*has_incumbent=*/true,
                     bound *= 0.999999, /*has_bound=*/true);
  }
  benchmark::DoNotOptimize(progress.published());
}
BENCHMARK(BM_ProgressPublish);

// A reader draining a full ring — what one GET /progress costs the daemon.
void BM_ProgressSnapshot(benchmark::State& state) {
  SolveProgress progress(/*capacity=*/256);
  for (int i = 0; i < 512; ++i) {
    progress.publish(i, i, 500.0, true, 1000.0 - i, true);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(progress.snapshot().timeline.size());
  }
}
BENCHMARK(BM_ProgressSnapshot);

// End to end: the same knapsack branch-and-bound with the progress ring
// detached (ring:0) and attached (ring:1). B&B publishes a sample every 64
// nodes plus on every incumbent/bound improvement; the ring:1/ring:0 delta
// is the full-system overhead and must stay under 1%.
void BM_BranchAndBoundProgressRing(benchmark::State& state) {
  Rng rng(11);
  lp::Model model;
  std::vector<lp::Term> objective;
  std::vector<lp::Term> cap;
  double total = 0.0;
  for (int j = 0; j < 26; ++j) {
    const int b = model.add_binary("take" + std::to_string(j));
    const double w = rng.uniform(1.0, 10.0);
    objective.push_back({b, rng.uniform(1.0, 20.0)});
    total += w;
    cap.push_back({b, w});
  }
  model.set_objective(lp::Sense::kMaximize, objective);
  model.add_constraint("cap", cap, lp::Relation::kLessEqual, 0.4 * total);
  const milp::BranchAndBoundSolver solver;
  const bool attach_ring = state.range(0) != 0;
  SolveProgress progress(/*capacity=*/256);
  long long nodes = 0;
  for (auto _ : state) {
    SolveContext ctx;
    if (attach_ring) ctx.set_progress(&progress);
    const auto result = solver.solve(model, ctx);
    nodes += result.nodes;
    benchmark::DoNotOptimize(result.objective);
  }
  state.counters["nodes"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
  if (attach_ring) {
    state.counters["published"] =
        benchmark::Counter(static_cast<double>(progress.published()));
  }
}
BENCHMARK(BM_BranchAndBoundProgressRing)->Arg(0)->Arg(1)->ArgNames({"ring"});

}  // namespace
}  // namespace etransform

BENCHMARK_MAIN();
