// Telemetry overhead microbenchmarks (google-benchmark).
//
// Quantifies the two costs the telemetry design promises to keep tiny:
//  * the disabled path — a TraceSpan over a null recorder must be a branch
//    (sub-nanosecond), because every instrumentation point in the solver
//    stack pays it on every solve;
//  * the enabled hot path — recording into the preallocated per-thread ring
//    and bumping atomic instruments, which bound the distortion tracing adds
//    to a traced run.
#include <benchmark/benchmark.h>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace etransform {
namespace {

using telemetry::MetricsRegistry;
using telemetry::TraceRecorder;
using telemetry::TraceSpan;

void BM_TraceSpanDisabled(benchmark::State& state) {
  TraceRecorder* recorder = nullptr;
  benchmark::DoNotOptimize(recorder);
  for (auto _ : state) {
    const TraceSpan span(recorder, "lp", "simplex.factorize");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  TraceRecorder recorder(/*capacity_per_thread=*/1 << 20);
  for (auto _ : state) {
    // Each span publishes two records; drain the ring before it fills so the
    // benchmark measures recording, not dropping.
    if (recorder.recorded() > (1 << 19)) {
      state.PauseTiming();
      recorder.clear();
      state.ResumeTiming();
    }
    const TraceSpan span(&recorder, "lp", "simplex.factorize");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_TraceInstantEnabled(benchmark::State& state) {
  TraceRecorder recorder(/*capacity_per_thread=*/1 << 20);
  std::int64_t i = 0;
  for (auto _ : state) {
    if (recorder.recorded() > (1 << 19)) {
      state.PauseTiming();
      recorder.clear();
      state.ResumeTiming();
    }
    recorder.instant("lp", "presolve.fix", ++i);
  }
}
BENCHMARK(BM_TraceInstantEnabled);

void BM_CounterAdd(benchmark::State& state) {
  MetricsRegistry registry;
  telemetry::Counter& counter =
      registry.counter("etransform_bench_pivots_total");
  for (auto _ : state) {
    counter.add(3.0);
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  MetricsRegistry registry;
  telemetry::Histogram& histogram =
      registry.histogram("etransform_bench_latency_ms");
  double v = 0.1;
  for (auto _ : state) {
    histogram.observe(v);
    v = v < 100000.0 ? v * 1.7 : 0.1;  // sweep across the log buckets
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramObserve);

}  // namespace
}  // namespace etransform

BENCHMARK_MAIN();
