# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lp_tool_demo "/root/repo/build/examples/lp_tool" "--demo")
set_tests_properties(example_lp_tool_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_full_pipeline "/root/repo/build/examples/full_pipeline")
set_tests_properties(example_full_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iterative_planning "/root/repo/build/examples/iterative_planning")
set_tests_properties(example_iterative_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
