# Empty dependencies file for dr_planning.
# This may be replaced when dependencies are built.
