file(REMOVE_RECURSE
  "CMakeFiles/dr_planning.dir/dr_planning.cpp.o"
  "CMakeFiles/dr_planning.dir/dr_planning.cpp.o.d"
  "dr_planning"
  "dr_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
