file(REMOVE_RECURSE
  "CMakeFiles/iterative_planning.dir/iterative_planning.cpp.o"
  "CMakeFiles/iterative_planning.dir/iterative_planning.cpp.o.d"
  "iterative_planning"
  "iterative_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
