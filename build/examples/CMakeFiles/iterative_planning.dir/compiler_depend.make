# Empty compiler generated dependencies file for iterative_planning.
# This may be replaced when dependencies are built.
