# Empty dependencies file for enterprise_consolidation.
# This may be replaced when dependencies are built.
