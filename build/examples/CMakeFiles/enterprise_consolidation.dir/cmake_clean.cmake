file(REMOVE_RECURSE
  "CMakeFiles/enterprise_consolidation.dir/enterprise_consolidation.cpp.o"
  "CMakeFiles/enterprise_consolidation.dir/enterprise_consolidation.cpp.o.d"
  "enterprise_consolidation"
  "enterprise_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
