# Empty dependencies file for lp_tool.
# This may be replaced when dependencies are built.
