file(REMOVE_RECURSE
  "CMakeFiles/lp_tool.dir/lp_tool.cpp.o"
  "CMakeFiles/lp_tool.dir/lp_tool.cpp.o.d"
  "lp_tool"
  "lp_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
