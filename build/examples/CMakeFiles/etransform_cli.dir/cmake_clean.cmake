file(REMOVE_RECURSE
  "CMakeFiles/etransform_cli.dir/etransform_cli.cpp.o"
  "CMakeFiles/etransform_cli.dir/etransform_cli.cpp.o.d"
  "etransform_cli"
  "etransform_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etransform_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
