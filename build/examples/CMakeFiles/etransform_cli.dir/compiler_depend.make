# Empty compiler generated dependencies file for etransform_cli.
# This may be replaced when dependencies are built.
