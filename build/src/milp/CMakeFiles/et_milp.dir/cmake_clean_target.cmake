file(REMOVE_RECURSE
  "libet_milp.a"
)
