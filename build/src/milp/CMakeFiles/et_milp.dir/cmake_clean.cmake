file(REMOVE_RECURSE
  "CMakeFiles/et_milp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/et_milp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/et_milp.dir/brute_force.cpp.o"
  "CMakeFiles/et_milp.dir/brute_force.cpp.o.d"
  "libet_milp.a"
  "libet_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
