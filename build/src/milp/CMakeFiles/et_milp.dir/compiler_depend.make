# Empty compiler generated dependencies file for et_milp.
# This may be replaced when dependencies are built.
