file(REMOVE_RECURSE
  "libet_lp.a"
)
