# Empty dependencies file for et_lp.
# This may be replaced when dependencies are built.
