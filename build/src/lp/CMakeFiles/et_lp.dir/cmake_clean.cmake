file(REMOVE_RECURSE
  "CMakeFiles/et_lp.dir/lp_format.cpp.o"
  "CMakeFiles/et_lp.dir/lp_format.cpp.o.d"
  "CMakeFiles/et_lp.dir/model.cpp.o"
  "CMakeFiles/et_lp.dir/model.cpp.o.d"
  "CMakeFiles/et_lp.dir/presolve.cpp.o"
  "CMakeFiles/et_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/et_lp.dir/simplex.cpp.o"
  "CMakeFiles/et_lp.dir/simplex.cpp.o.d"
  "libet_lp.a"
  "libet_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
