file(REMOVE_RECURSE
  "CMakeFiles/et_planner.dir/admin.cpp.o"
  "CMakeFiles/et_planner.dir/admin.cpp.o.d"
  "CMakeFiles/et_planner.dir/etransform_planner.cpp.o"
  "CMakeFiles/et_planner.dir/etransform_planner.cpp.o.d"
  "CMakeFiles/et_planner.dir/formulation.cpp.o"
  "CMakeFiles/et_planner.dir/formulation.cpp.o.d"
  "CMakeFiles/et_planner.dir/lagrangian.cpp.o"
  "CMakeFiles/et_planner.dir/lagrangian.cpp.o.d"
  "CMakeFiles/et_planner.dir/local_search.cpp.o"
  "CMakeFiles/et_planner.dir/local_search.cpp.o.d"
  "CMakeFiles/et_planner.dir/migration.cpp.o"
  "CMakeFiles/et_planner.dir/migration.cpp.o.d"
  "libet_planner.a"
  "libet_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
