
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planner/admin.cpp" "src/planner/CMakeFiles/et_planner.dir/admin.cpp.o" "gcc" "src/planner/CMakeFiles/et_planner.dir/admin.cpp.o.d"
  "/root/repo/src/planner/etransform_planner.cpp" "src/planner/CMakeFiles/et_planner.dir/etransform_planner.cpp.o" "gcc" "src/planner/CMakeFiles/et_planner.dir/etransform_planner.cpp.o.d"
  "/root/repo/src/planner/formulation.cpp" "src/planner/CMakeFiles/et_planner.dir/formulation.cpp.o" "gcc" "src/planner/CMakeFiles/et_planner.dir/formulation.cpp.o.d"
  "/root/repo/src/planner/lagrangian.cpp" "src/planner/CMakeFiles/et_planner.dir/lagrangian.cpp.o" "gcc" "src/planner/CMakeFiles/et_planner.dir/lagrangian.cpp.o.d"
  "/root/repo/src/planner/local_search.cpp" "src/planner/CMakeFiles/et_planner.dir/local_search.cpp.o" "gcc" "src/planner/CMakeFiles/et_planner.dir/local_search.cpp.o.d"
  "/root/repo/src/planner/migration.cpp" "src/planner/CMakeFiles/et_planner.dir/migration.cpp.o" "gcc" "src/planner/CMakeFiles/et_planner.dir/migration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/et_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/et_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/et_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/et_model.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/et_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
