file(REMOVE_RECURSE
  "libet_planner.a"
)
