# Empty compiler generated dependencies file for et_planner.
# This may be replaced when dependencies are built.
