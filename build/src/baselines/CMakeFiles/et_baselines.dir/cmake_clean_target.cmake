file(REMOVE_RECURSE
  "libet_baselines.a"
)
