file(REMOVE_RECURSE
  "CMakeFiles/et_baselines.dir/baselines.cpp.o"
  "CMakeFiles/et_baselines.dir/baselines.cpp.o.d"
  "libet_baselines.a"
  "libet_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
