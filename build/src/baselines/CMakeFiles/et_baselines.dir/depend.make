# Empty dependencies file for et_baselines.
# This may be replaced when dependencies are built.
