
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cost_schedule.cpp" "src/model/CMakeFiles/et_model.dir/cost_schedule.cpp.o" "gcc" "src/model/CMakeFiles/et_model.dir/cost_schedule.cpp.o.d"
  "/root/repo/src/model/entities.cpp" "src/model/CMakeFiles/et_model.dir/entities.cpp.o" "gcc" "src/model/CMakeFiles/et_model.dir/entities.cpp.o.d"
  "/root/repo/src/model/grouping.cpp" "src/model/CMakeFiles/et_model.dir/grouping.cpp.o" "gcc" "src/model/CMakeFiles/et_model.dir/grouping.cpp.o.d"
  "/root/repo/src/model/instance_io.cpp" "src/model/CMakeFiles/et_model.dir/instance_io.cpp.o" "gcc" "src/model/CMakeFiles/et_model.dir/instance_io.cpp.o.d"
  "/root/repo/src/model/latency.cpp" "src/model/CMakeFiles/et_model.dir/latency.cpp.o" "gcc" "src/model/CMakeFiles/et_model.dir/latency.cpp.o.d"
  "/root/repo/src/model/plan.cpp" "src/model/CMakeFiles/et_model.dir/plan.cpp.o" "gcc" "src/model/CMakeFiles/et_model.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
