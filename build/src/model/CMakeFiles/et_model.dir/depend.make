# Empty dependencies file for et_model.
# This may be replaced when dependencies are built.
