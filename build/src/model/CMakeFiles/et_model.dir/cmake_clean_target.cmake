file(REMOVE_RECURSE
  "libet_model.a"
)
