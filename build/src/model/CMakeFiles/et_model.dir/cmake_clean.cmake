file(REMOVE_RECURSE
  "CMakeFiles/et_model.dir/cost_schedule.cpp.o"
  "CMakeFiles/et_model.dir/cost_schedule.cpp.o.d"
  "CMakeFiles/et_model.dir/entities.cpp.o"
  "CMakeFiles/et_model.dir/entities.cpp.o.d"
  "CMakeFiles/et_model.dir/grouping.cpp.o"
  "CMakeFiles/et_model.dir/grouping.cpp.o.d"
  "CMakeFiles/et_model.dir/instance_io.cpp.o"
  "CMakeFiles/et_model.dir/instance_io.cpp.o.d"
  "CMakeFiles/et_model.dir/latency.cpp.o"
  "CMakeFiles/et_model.dir/latency.cpp.o.d"
  "CMakeFiles/et_model.dir/plan.cpp.o"
  "CMakeFiles/et_model.dir/plan.cpp.o.d"
  "libet_model.a"
  "libet_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
