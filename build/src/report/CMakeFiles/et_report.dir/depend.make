# Empty dependencies file for et_report.
# This may be replaced when dependencies are built.
