file(REMOVE_RECURSE
  "libet_report.a"
)
