file(REMOVE_RECURSE
  "CMakeFiles/et_report.dir/report.cpp.o"
  "CMakeFiles/et_report.dir/report.cpp.o.d"
  "CMakeFiles/et_report.dir/sensitivity.cpp.o"
  "CMakeFiles/et_report.dir/sensitivity.cpp.o.d"
  "libet_report.a"
  "libet_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
