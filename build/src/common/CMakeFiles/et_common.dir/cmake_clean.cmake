file(REMOVE_RECURSE
  "CMakeFiles/et_common.dir/csv.cpp.o"
  "CMakeFiles/et_common.dir/csv.cpp.o.d"
  "CMakeFiles/et_common.dir/logging.cpp.o"
  "CMakeFiles/et_common.dir/logging.cpp.o.d"
  "CMakeFiles/et_common.dir/money.cpp.o"
  "CMakeFiles/et_common.dir/money.cpp.o.d"
  "CMakeFiles/et_common.dir/random.cpp.o"
  "CMakeFiles/et_common.dir/random.cpp.o.d"
  "CMakeFiles/et_common.dir/strings.cpp.o"
  "CMakeFiles/et_common.dir/strings.cpp.o.d"
  "CMakeFiles/et_common.dir/table.cpp.o"
  "CMakeFiles/et_common.dir/table.cpp.o.d"
  "libet_common.a"
  "libet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
