file(REMOVE_RECURSE
  "libet_cost.a"
)
