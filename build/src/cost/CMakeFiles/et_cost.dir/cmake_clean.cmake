file(REMOVE_RECURSE
  "CMakeFiles/et_cost.dir/cost_model.cpp.o"
  "CMakeFiles/et_cost.dir/cost_model.cpp.o.d"
  "libet_cost.a"
  "libet_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
