# Empty dependencies file for et_cost.
# This may be replaced when dependencies are built.
