file(REMOVE_RECURSE
  "libet_datagen.a"
)
