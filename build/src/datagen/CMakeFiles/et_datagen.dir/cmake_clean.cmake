file(REMOVE_RECURSE
  "CMakeFiles/et_datagen.dir/generators.cpp.o"
  "CMakeFiles/et_datagen.dir/generators.cpp.o.d"
  "libet_datagen.a"
  "libet_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
