# Empty compiler generated dependencies file for et_datagen.
# This may be replaced when dependencies are built.
