# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/lp_model_test[1]_include.cmake")
include("/root/repo/build/tests/simplex_test[1]_include.cmake")
include("/root/repo/build/tests/lp_format_test[1]_include.cmake")
include("/root/repo/build/tests/milp_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/formulation_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/local_search_test[1]_include.cmake")
include("/root/repo/build/tests/admin_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/lp_property_test[1]_include.cmake")
include("/root/repo/build/tests/instance_io_test[1]_include.cmake")
include("/root/repo/build/tests/presolve_test[1]_include.cmake")
include("/root/repo/build/tests/sensitivity_test[1]_include.cmake")
include("/root/repo/build/tests/grouping_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/solver_limits_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_robustness_test[1]_include.cmake")
