file(REMOVE_RECURSE
  "CMakeFiles/formulation_test.dir/formulation_test.cpp.o"
  "CMakeFiles/formulation_test.dir/formulation_test.cpp.o.d"
  "formulation_test"
  "formulation_test.pdb"
  "formulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
