# Empty compiler generated dependencies file for lp_format_test.
# This may be replaced when dependencies are built.
