file(REMOVE_RECURSE
  "CMakeFiles/lp_model_test.dir/lp_model_test.cpp.o"
  "CMakeFiles/lp_model_test.dir/lp_model_test.cpp.o.d"
  "lp_model_test"
  "lp_model_test.pdb"
  "lp_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
