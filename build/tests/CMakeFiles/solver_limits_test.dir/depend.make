# Empty dependencies file for solver_limits_test.
# This may be replaced when dependencies are built.
