file(REMOVE_RECURSE
  "CMakeFiles/solver_limits_test.dir/solver_limits_test.cpp.o"
  "CMakeFiles/solver_limits_test.dir/solver_limits_test.cpp.o.d"
  "solver_limits_test"
  "solver_limits_test.pdb"
  "solver_limits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
