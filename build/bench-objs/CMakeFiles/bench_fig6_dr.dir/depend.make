# Empty dependencies file for bench_fig6_dr.
# This may be replaced when dependencies are built.
