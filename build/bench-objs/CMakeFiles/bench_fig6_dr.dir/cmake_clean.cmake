file(REMOVE_RECURSE
  "../bench/bench_fig6_dr"
  "../bench/bench_fig6_dr.pdb"
  "CMakeFiles/bench_fig6_dr.dir/bench_fig6_dr.cpp.o"
  "CMakeFiles/bench_fig6_dr.dir/bench_fig6_dr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
