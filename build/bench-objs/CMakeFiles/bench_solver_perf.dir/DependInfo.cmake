
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_solver_perf.cpp" "bench-objs/CMakeFiles/bench_solver_perf.dir/bench_solver_perf.cpp.o" "gcc" "bench-objs/CMakeFiles/bench_solver_perf.dir/bench_solver_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/planner/CMakeFiles/et_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/et_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/et_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/et_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/et_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/et_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/et_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
