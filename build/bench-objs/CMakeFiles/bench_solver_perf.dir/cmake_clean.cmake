file(REMOVE_RECURSE
  "../bench/bench_solver_perf"
  "../bench/bench_solver_perf.pdb"
  "CMakeFiles/bench_solver_perf.dir/bench_solver_perf.cpp.o"
  "CMakeFiles/bench_solver_perf.dir/bench_solver_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
