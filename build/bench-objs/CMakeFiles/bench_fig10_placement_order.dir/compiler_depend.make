# Empty compiler generated dependencies file for bench_fig10_placement_order.
# This may be replaced when dependencies are built.
