file(REMOVE_RECURSE
  "../bench/bench_fig10_placement_order"
  "../bench/bench_fig10_placement_order.pdb"
  "CMakeFiles/bench_fig10_placement_order.dir/bench_fig10_placement_order.cpp.o"
  "CMakeFiles/bench_fig10_placement_order.dir/bench_fig10_placement_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_placement_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
