file(REMOVE_RECURSE
  "../bench/bench_fig8_dr_server_cost"
  "../bench/bench_fig8_dr_server_cost.pdb"
  "CMakeFiles/bench_fig8_dr_server_cost.dir/bench_fig8_dr_server_cost.cpp.o"
  "CMakeFiles/bench_fig8_dr_server_cost.dir/bench_fig8_dr_server_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dr_server_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
