# Empty dependencies file for bench_fig8_dr_server_cost.
# This may be replaced when dependencies are built.
