# Empty compiler generated dependencies file for bench_fig9_space_wan_tradeoff.
# This may be replaced when dependencies are built.
