file(REMOVE_RECURSE
  "../bench/bench_fig9_space_wan_tradeoff"
  "../bench/bench_fig9_space_wan_tradeoff.pdb"
  "CMakeFiles/bench_fig9_space_wan_tradeoff.dir/bench_fig9_space_wan_tradeoff.cpp.o"
  "CMakeFiles/bench_fig9_space_wan_tradeoff.dir/bench_fig9_space_wan_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_space_wan_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
