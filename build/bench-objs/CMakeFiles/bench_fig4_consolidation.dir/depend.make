# Empty dependencies file for bench_fig4_consolidation.
# This may be replaced when dependencies are built.
