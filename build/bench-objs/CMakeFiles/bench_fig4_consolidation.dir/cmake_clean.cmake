file(REMOVE_RECURSE
  "../bench/bench_fig4_consolidation"
  "../bench/bench_fig4_consolidation.pdb"
  "CMakeFiles/bench_fig4_consolidation.dir/bench_fig4_consolidation.cpp.o"
  "CMakeFiles/bench_fig4_consolidation.dir/bench_fig4_consolidation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
