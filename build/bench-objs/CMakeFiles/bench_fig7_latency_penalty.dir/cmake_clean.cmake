file(REMOVE_RECURSE
  "../bench/bench_fig7_latency_penalty"
  "../bench/bench_fig7_latency_penalty.pdb"
  "CMakeFiles/bench_fig7_latency_penalty.dir/bench_fig7_latency_penalty.cpp.o"
  "CMakeFiles/bench_fig7_latency_penalty.dir/bench_fig7_latency_penalty.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_latency_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
